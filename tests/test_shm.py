"""Shared-memory substrate: codec, lifecycle, pool transport, leaks.

Three layers under test.  First the :mod:`repro.shm` primitive itself —
header validation, zero-copy reconstruction, owner/attacher lifecycle,
POSIX valid-until-last-detach semantics, and the ``/dev/shm`` leak
audit.  Second the :class:`~repro.parallel.WorkerPool` shm transport:
feeds and collects over segments must be bit-identical to the in-band
pipe protocol, and every segment must be gone once the batch (or the
pool) is done — including when workers are SIGKILL'd mid-stream.  Third
the cross-process sweep that extends PR 7's self-healing to the shm
lifecycle: a dead worker's segments are reaped by name, and the inline
serial fallback releases them before replaying.
"""

from __future__ import annotations

import os
import pickle
import signal

import numpy as np
import pytest

from repro import shm
from repro.parallel import WorkerPool, fork_available, pool_faults

pytestmark = pytest.mark.skipif(
    not shm.shm_available(), reason="POSIX shared memory unavailable"
)

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="worker pools require os.fork"
)


def assert_no_leaks():
    __tracebackinfo__ = "every repro-shm segment must be unlinked"
    assert shm.leaked_segments() == []


# --------------------------------------------------------------------- #
# Codec: write_object / read_object
# --------------------------------------------------------------------- #


def test_round_trip_zero_copy_views():
    obj = {
        "counts": np.arange(1000, dtype=np.uint64),
        "slopes": np.linspace(0.0, 1.0, 7),
        "nested": [np.ones((3, 5), dtype=np.float32), "label", 42, None],
    }
    with shm.write_object(obj) as segment:
        got, attached = shm.read_attached(segment.name)
        assert np.array_equal(got["counts"], obj["counts"])
        assert np.array_equal(got["slopes"], obj["slopes"])
        assert np.array_equal(got["nested"][0], obj["nested"][0])
        assert got["nested"][1:] == ["label", 42, None]
        # Zero-copy: the arrays are views over the mapping, read-only.
        assert not got["counts"].flags.writeable
        with pytest.raises(ValueError):
            got["counts"][0] = 1
        # Views pin the mapping; close succeeds once they are dropped.
        assert attached.close() is False
        del got
        assert attached.close() is True
    assert_no_leaks()


def test_non_contiguous_arrays_fall_back_in_band():
    cube = np.arange(60).reshape(3, 4, 5)
    with shm.write_object({"slice": cube[:, 2, :]}) as segment:
        got = shm.read_object(segment)
        assert np.array_equal(got["slice"], cube[:, 2, :])
    assert_no_leaks()


def test_plain_objects_need_no_buffers():
    with shm.write_object({"a": [1, 2, 3], "b": "text"}) as segment:
        assert shm.read_object(segment) == {"a": [1, 2, 3], "b": "text"}
    assert_no_leaks()


def test_header_rejects_garbage_and_wrong_version():
    with shm.ShmSegment.create(256) as segment:
        segment.buf[:4] = b"NOPE"
        with pytest.raises(shm.ShmError, match="bad magic"):
            shm.read_object(segment)
        good = pickle.dumps(None, protocol=5)
        segment.buf[: shm._HEADER.size] = shm._HEADER.pack(
            shm._MAGIC, 99, 0, len(good), 0
        )
        with pytest.raises(shm.ShmError, match="version"):
            shm.read_object(segment)
    assert_no_leaks()


# --------------------------------------------------------------------- #
# Lifecycle: ownership, adoption, POSIX detach semantics
# --------------------------------------------------------------------- #


def test_attacher_cannot_unlink_owner_can():
    segment = shm.write_object([1, 2, 3])
    attached = shm.ShmSegment.attach(segment.name)
    with pytest.raises(shm.ShmError, match="attached, not owned"):
        attached.unlink()
    attached.close()
    assert segment.name in shm.owned_segment_names()
    segment.release()
    assert segment.name not in shm.owned_segment_names()
    with pytest.raises(shm.ShmError, match="does not exist"):
        shm.ShmSegment.attach(segment.name)
    assert_no_leaks()


def test_unlinked_segment_stays_valid_until_last_detach():
    segment = shm.write_object({"v": np.arange(64)})
    got, attached = shm.read_attached(segment.name)
    segment.release()  # name gone from /dev/shm...
    assert_no_leaks()
    assert np.array_equal(got["v"], np.arange(64))  # ...mapping still valid
    del got
    assert attached.close() is True


def test_adopt_transfers_unlink_authority():
    segment = shm.write_object("handoff")
    attached = shm.ShmSegment.attach(segment.name)
    attached.adopt()
    attached.unlink()  # adopted: unlink now allowed
    attached.close()
    segment.release()  # original owner's unlink is a no-op, not an error
    assert_no_leaks()


def test_reap_segment_and_pid_sweep():
    segment = shm.write_object(np.arange(10))
    name = segment.name
    assert shm.reap_segment(name) is True
    assert shm.reap_segment(name) is False  # already gone
    segment.close()

    a = shm.write_object("one")
    b = shm.write_object("two")
    reaped = shm.reap_pid_segments(os.getpid())
    assert sorted(reaped) == sorted([a.name, b.name])
    a.close()
    b.close()
    assert_no_leaks()


def test_create_rejects_nonpositive_size():
    with pytest.raises(ValueError):
        shm.ShmSegment.create(0)


# --------------------------------------------------------------------- #
# Pool transport: bit-equality and leak-freedom
# --------------------------------------------------------------------- #


class _SumHandler:
    """Minimal pool handler: partition-local running sums."""

    def __init__(self, index, nworkers):
        self.index = index
        self.nworkers = nworkers
        self.total = np.zeros(4, dtype=np.float64)
        self.batches = 0

    def feed(self, payload):
        values = payload["values"]
        self.total += values[self.index :: self.nworkers].sum(axis=0)
        self.batches += 1

    def collect(self):
        return {"total": self.total.copy(), "batches": self.batches}


def _drive(pool, batches):
    for values in batches:
        pool.feed([{"values": values}] * pool.nworkers)
    return pool.collect()


def _random_batches(seed: int, n: int = 4) -> list[np.ndarray]:
    # Pre-drawn on the master before any fork: the workers only ever
    # see finished arrays, never generator state.
    rng = np.random.default_rng(seed)
    return [rng.normal(size=(50, 4)) for _ in range(n)]


@needs_fork
@pytest.mark.parametrize("width", (2, 3))
def test_pool_shm_transport_matches_in_band(width):
    batches = _random_batches(7)
    results = {}
    for label, use_shm in (("shm", True), ("pipe", False)):
        pool = WorkerPool(width, _SumHandler, use_shm=use_shm)
        assert pool.use_shm is use_shm
        try:
            results[label] = _drive(pool, batches)
        finally:
            pool.close()
    for got, want in zip(results["shm"], results["pipe"]):
        assert got["batches"] == want["batches"]
        np.testing.assert_array_equal(got["total"], want["total"])
    assert_no_leaks()


@needs_fork
def test_pool_feed_segments_released_immediately():
    pool = WorkerPool(2, _SumHandler, use_shm=True)
    try:
        pool.feed([{"values": np.ones((8, 4))}] * 2)
        # The batch is acked, so its segments are already unlinked even
        # though collect() has not run yet.
        assert_no_leaks()
        pool.collect()
    finally:
        pool.close()
    assert_no_leaks()


@needs_fork
def test_pool_broadcast_payload_shares_one_segment():
    pool = WorkerPool(3, _SumHandler, use_shm=True)
    try:
        payload = {"values": np.ones((9, 4))}
        segments = pool._publish_payloads([payload] * 3)
        assert segments is not None
        assert len({segment.name for segment in segments}) == 1
        pool._release_segments(segments)
    finally:
        pool.close()
    assert_no_leaks()


@needs_fork
def test_pool_heals_sigkilled_worker_without_leaking():
    pool = WorkerPool(2, _SumHandler, use_shm=True, reply_deadline_s=30.0)
    try:
        batches = [np.full((20, 4), float(i)) for i in range(3)]
        pool.feed([{"values": batches[0]}] * 2)
        os.kill(pool.pids[0], signal.SIGKILL)
        pool.feed([{"values": batches[1]}] * 2)  # heals: respawn + replay
        pool.feed([{"values": batches[2]}] * 2)
        healed = pool.collect()
        assert pool.respawns >= 1
    finally:
        pool.close()
    assert_no_leaks()

    serial = _SumHandler(0, 1)
    for values in batches:
        serial.feed({"values": values})
    merged = healed[0]["total"] + healed[1]["total"]
    np.testing.assert_allclose(merged, serial.total)


class _FaultPlanStub:
    """Duck-typed pool fault plan: always fail respawns."""

    pool_reply_deadline_s = 5.0

    def pool_feed_actions(self):
        return []

    def pool_respawn_should_fail(self):
        return True


@needs_fork
def test_inline_fallback_releases_dead_worker_segments():
    pool = WorkerPool(2, _SumHandler, use_shm=True, max_respawns=1)
    try:
        pool.feed([{"values": np.ones((5, 4))}] * 2)
        victim = pool.pids[1]
        with pool_faults(_FaultPlanStub()):
            os.kill(victim, signal.SIGKILL)
            pool.feed([{"values": np.ones((5, 4))}] * 2)
        assert pool.inline_workers == [1]
        assert pool.serial_fallbacks == 1
        # Satellite contract: nothing owned by the dead worker survives
        # the degrade to inline, and the feed segments are gone too.
        assert shm.leaked_segments(f"{shm.NAME_PREFIX}-{victim}-") == []
        assert_no_leaks()
        states = pool.collect()
        assert states[0]["batches"] == states[1]["batches"] == 2
    finally:
        pool.close()
    assert_no_leaks()


@needs_fork
def test_pool_close_sweeps_everything():
    pool = WorkerPool(2, _SumHandler, use_shm=True)
    pool.feed([{"values": np.ones((5, 4))}] * 2)
    pool.collect()
    pool.feed([{"values": np.ones((5, 4))}] * 2)
    pool.close(terminate=True)
    assert_no_leaks()


# --------------------------------------------------------------------- #
# Shared frozen views: publish, attach, recover-into, serve
# --------------------------------------------------------------------- #

#: Query spread used by every bit-equality check below: every 7th item
#: of the recovery suite's universe, over full-history and interior
#: windows.
_PROBE_STEP = 7


def _frozen_probe(view, stream, t):
    """One deterministic answer vector across every frozen verb.

    The heavy-hitter-backed verbs (heavy_hitters, window_mass) only
    probe "urls" — the recovery suite's "ads" stream is created without
    that sketch and raises the usual typed error.
    """
    items = list(range(0, 64, _PROBE_STEP))
    windows = [(0.0, float(t)), (float(t) // 3, 2 * float(t) // 3)]
    answers = [view.point(stream, item, s, e)
               for item in items for s, e in windows]
    many = view.point_many(stream, items, [(0.0, float(t))] * len(items))
    answers.append([float(x) for x in many])
    if stream == "urls":
        answers.append(sorted(view.heavy_hitters(stream, 0.05, 0, t).items()))
        answers.append(view.window_mass(stream, 0, t))
    answers.append(view.self_join_size(stream, 0, t))
    return answers


def test_shared_frozen_view_attach_is_bit_equal(tmp_path):
    from repro.engine.frozen import attach_view
    from repro.runtime import IngestRuntime
    from tests.test_runtime_recovery import make_records, make_store

    runtime = IngestRuntime.create(
        tmp_path / "rt", make_store(), checkpoint_every=50
    )
    try:
        for raw in make_records():
            runtime.ingest(raw)
        view, segment = runtime.shared_frozen_view()
        # Memoized while applied_seq is unchanged: a cutover tick that
        # finds no new records must not republish.
        again_view, again_segment = runtime.shared_frozen_view()
        assert again_view is view and again_segment.name == segment.name

        twin, attached = attach_view(segment.name)
        try:
            for stream in ("urls", "ads"):
                t = view.clock(stream)
                assert twin.clock(stream) == t
                assert _frozen_probe(twin, stream, t) == _frozen_probe(
                    view, stream, t
                )
        finally:
            attached.close()
    finally:
        runtime.close()
    assert_no_leaks()


def test_recover_publish_shared_and_checkpoint_fast_path(tmp_path):
    from repro.engine.frozen import attach_view
    from repro.runtime import IngestRuntime
    from tests.test_runtime_recovery import make_records, make_store

    first = IngestRuntime.create(
        tmp_path / "rt", make_store(), checkpoint_every=50
    )
    for raw in make_records():
        first.ingest(raw)
    applied = first.applied_seq
    first.close()
    assert_no_leaks()  # a closed runtime releases its published segment

    # recover(publish_shared=True): the replayed state is already in a
    # segment when recover() returns, and it is the memoized one.
    recovered = IngestRuntime.recover(
        tmp_path / "rt", checkpoint_every=50, publish_shared=True
    )
    try:
        view, segment = recovered.shared_frozen_view()
        twin, attached = tuple(attach_view(segment.name))
        try:
            t = view.clock("urls")
            assert _frozen_probe(twin, "urls", t) == _frozen_probe(
                view, "urls", t
            )
        finally:
            attached.close()

        # Checkpoint fast path: a read-only process publishes the newest
        # checkpoint without recovering a runtime.  Its answers must be
        # bit-equal to the recovered view at the checkpoint's coverage.
        covered_seq, ckpt_view, ckpt_segment = (
            IngestRuntime.open_checkpoint_shared(tmp_path / "rt")
        )
        try:
            assert 0 < covered_seq <= applied
            reader, reader_segment = attach_view(ckpt_segment.name)
            try:
                for stream in ("urls", "ads"):
                    t = ckpt_view.clock(stream)
                    assert _frozen_probe(reader, stream, t) == _frozen_probe(
                        ckpt_view, stream, t
                    )
            finally:
                reader_segment.close()
        finally:
            ckpt_segment.release()
    finally:
        recovered.close()
    assert_no_leaks()


@needs_fork
def test_serving_query_workers_bit_equal_to_inline(tmp_path):
    from repro.runtime import IngestRuntime
    from repro.server import ServingRuntime
    from tests.test_runtime_recovery import make_records, make_store

    records = make_records()
    servings = {}
    try:
        for label, query_workers in (("inline", 0), ("pooled", 2)):
            runtime = IngestRuntime.create(
                tmp_path / label, make_store(), checkpoint_every=50
            )
            serving = ServingRuntime(runtime, query_workers=query_workers)
            servings[label] = serving
            serving.ingest_batch(records)
            assert serving.maybe_cutover(force=True)["swapped"]
        pool = servings["pooled"].query_pool()
        assert pool is not None and len(pool.pids) == 2
        assert servings["inline"].query_pool() is None

        for stream in ("urls", "ads"):
            t = servings["inline"].view().clock(stream)
            want = _frozen_probe(servings["inline"], stream, t)
            assert _frozen_probe(servings["pooled"], stream, t) == want
    finally:
        for serving in servings.values():
            serving.close()
    assert_no_leaks()
