"""Tests for the dyadic range-sum and windowed top-k extensions."""

import numpy as np
import pytest

from repro.core.heavy_hitters import PersistentHeavyHitters
from repro.streams.model import Stream
from repro.streams.truth import GroundTruth


@pytest.fixture(scope="module")
def structure():
    rng = np.random.default_rng(91)
    items = rng.integers(0, 200, size=5000)
    items[::5] = 7  # a clear top item
    items[1::9] = 120
    stream = Stream(items=items, universe=256)
    truth = GroundTruth(stream)
    hh = PersistentHeavyHitters(universe=256, width=256, depth=4, delta=10)
    hh.ingest(stream)
    return stream, truth, hh


class TestRangeSum:
    def test_full_universe_equals_mass(self, structure):
        stream, truth, hh = structure
        estimate = hh.range_sum(0, 255)
        assert estimate == pytest.approx(len(stream), rel=0.05)

    def test_window_ranges(self, structure):
        stream, truth, hh = structure
        s, t = 1000, 4000
        for lo, hi in [(0, 63), (7, 7), (100, 140), (50, 199), (200, 255)]:
            actual = sum(
                truth.frequency(item, s, t) for item in range(lo, hi + 1)
            )
            estimate = hh.range_sum(lo, hi, s, t)
            # ~2 log n point queries, each with eps*L1 + delta error.
            slack = 16 * (10 + 0.02 * truth.window_l1(s, t))
            assert abs(estimate - actual) <= slack

    def test_single_item_range_matches_point(self, structure):
        _, _, hh = structure
        assert hh.range_sum(7, 7) == hh.point(7)

    def test_invalid_ranges(self, structure):
        _, _, hh = structure
        with pytest.raises(ValueError):
            hh.range_sum(-1, 5)
        with pytest.raises(ValueError):
            hh.range_sum(0, 256)

    def test_unaligned_range_decomposition(self, structure):
        """Ranges that force many dyadic blocks still work."""
        stream, truth, hh = structure
        actual = sum(truth.frequency(item) for item in range(3, 250))
        estimate = hh.range_sum(3, 249)
        assert estimate == pytest.approx(actual, rel=0.2, abs=200)


class TestTopK:
    def test_top1_is_planted_item(self, structure):
        _, truth, hh = structure
        top = hh.top_k(1)
        assert top[0][0] == 7

    def test_topk_matches_truth(self, structure):
        _, truth, hh = structure
        estimated = [item for item, _ in hh.top_k(2)]
        actual = [item for item, _ in truth.top_k(2)]
        assert estimated == actual

    def test_topk_window(self, structure):
        _, truth, hh = structure
        s, t = 2000, 4500
        estimated = [item for item, _ in hh.top_k(2, s, t)]
        actual = [item for item, _ in truth.top_k(2, s, t)]
        assert set(estimated) == set(actual)

    def test_k_validation(self, structure):
        _, _, hh = structure
        with pytest.raises(ValueError):
            hh.top_k(0)
