"""Tests for the ephemeral Count-Min sketch."""

import pytest

from repro.hashing import BucketHashFamily, HashConfig
from repro.sketch.countmin import CountMinSketch
from repro.sketch.exact import ExactFrequency
from repro.streams.generators import zipf_stream


class TestBasics:
    def test_point_never_underestimates(self, small_zipf, small_zipf_truth):
        sketch = CountMinSketch(width=512, depth=5, seed=1)
        for item in small_zipf.items:
            sketch.update(int(item))
        for item, freq in small_zipf_truth.top_k(100):
            assert sketch.point(item) >= freq

    def test_point_error_bound(self, small_zipf, small_zipf_truth):
        sketch = CountMinSketch(width=512, depth=5, seed=1)
        for item in small_zipf.items:
            sketch.update(int(item))
        # eps = e/w; error <= eps * ||f||_1 whp per query.
        bound = 2.718281828 / 512 * len(small_zipf)
        for item, freq in small_zipf_truth.top_k(100):
            assert sketch.point(item) - freq <= bound

    def test_exact_when_no_collisions(self):
        sketch = CountMinSketch(width=4096, depth=5, seed=2)
        exact = ExactFrequency()
        for item in [1, 2, 3, 1, 2, 1]:
            sketch.update(item)
            exact.update(item)
        for item in (1, 2, 3):
            assert sketch.point(item) == exact.point(item)
        assert sketch.point(99) == 0

    def test_total_tracks_updates(self):
        sketch = CountMinSketch(width=16, depth=2)
        sketch.update(1)
        sketch.update(2, count=3)
        assert sketch.total == 4

    def test_weighted_updates(self):
        sketch = CountMinSketch(width=1024, depth=4, seed=3)
        sketch.update(5, count=10)
        assert sketch.point(5) >= 10


class TestTurnstile:
    def test_median_handles_deletions(self):
        sketch = CountMinSketch(width=1024, depth=5, seed=4)
        for _ in range(10):
            sketch.update(1, 1)
        for _ in range(4):
            sketch.update(1, -1)
        assert sketch.point_median(1) == pytest.approx(6, abs=1)


class TestFromError:
    def test_shape_from_error(self):
        sketch = CountMinSketch.from_error(eps=0.01, delta=0.01)
        assert sketch.width >= 271  # e / 0.01
        assert sketch.depth >= 4

    @pytest.mark.parametrize("eps,delta", [(0, 0.1), (0.1, 0), (1.5, 0.1)])
    def test_invalid_params(self, eps, delta):
        with pytest.raises(ValueError):
            CountMinSketch.from_error(eps=eps, delta=delta)


class TestMergeAndJoin:
    def test_merge_equals_union_stream(self):
        a = CountMinSketch(width=256, depth=4, seed=5)
        b = CountMinSketch(width=256, depth=4, seed=5)
        combined = CountMinSketch(width=256, depth=4, seed=5)
        for item in [1, 2, 3, 4]:
            a.update(item)
            combined.update(item)
        for item in [3, 4, 5]:
            b.update(item)
            combined.update(item)
        a.merge(b)
        assert (a.counters == combined.counters).all()
        assert a.total == combined.total

    def test_merge_shape_mismatch(self):
        a = CountMinSketch(width=256, depth=4)
        b = CountMinSketch(width=128, depth=4)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_seed_mismatch(self):
        """Regression: equal shapes but different hash seeds must be
        rejected — merging rows hashed with different functions silently
        corrupts every subsequent estimate."""
        a = CountMinSketch(width=256, depth=4, seed=5)
        b = CountMinSketch(width=256, depth=4, seed=6)
        for item in [1, 2, 3]:
            a.update(item)
            b.update(item)
        with pytest.raises(ValueError, match="hash seed"):
            a.merge(b)
        with pytest.raises(ValueError, match="hash seed"):
            a.inner_product(b)

    def test_merge_same_seed_still_allowed(self):
        a = CountMinSketch(width=256, depth=4, seed=5)
        b = CountMinSketch(width=256, depth=4, seed=5)
        a.update(1)
        b.update(2)
        a.merge(b)
        assert a.total == 2

    def test_inner_product_upper_bounds_join(self):
        stream = zipf_stream(2000, universe=2**16, exponent=2.0, seed=9)
        a = CountMinSketch(width=512, depth=4, seed=6)
        b = CountMinSketch(width=512, depth=4, seed=6)
        exact_a, exact_b = ExactFrequency(), ExactFrequency()
        for i, item in enumerate(stream.items):
            target = (a, exact_a) if i % 2 == 0 else (b, exact_b)
            target[0].update(int(item))
            target[1].update(int(item))
        true_join = exact_a.join_size(exact_b)
        assert a.inner_product(b) >= true_join


class TestHashSharing:
    def test_prebuilt_family(self):
        family = BucketHashFamily(HashConfig(width=64, depth=3, seed=7))
        sketch = CountMinSketch(width=64, depth=3, hashes=family)
        sketch.update(1)
        assert sketch.point(1) >= 1

    def test_family_shape_mismatch(self):
        family = BucketHashFamily(HashConfig(width=64, depth=3, seed=7))
        with pytest.raises(ValueError):
            CountMinSketch(width=32, depth=3, hashes=family)

    def test_words(self):
        assert CountMinSketch(width=64, depth=3).words() == 192
