"""Tests for segment storage and the piecewise-constant recorder."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pla.piecewise import PiecewiseLinearFunction
from repro.pla.piecewise_constant import OnlinePWC, PiecewiseConstantFunction
from repro.pla.segment import Segment


class TestSegment:
    def test_evaluation(self):
        seg = Segment(t_start=10, t_end=20, slope=2.0, value_at_start=5.0)
        assert seg(10) == 5.0
        assert seg(15) == 15.0

    def test_clamping(self):
        seg = Segment(t_start=10, t_end=20, slope=1.0, value_at_start=0.0)
        assert seg.evaluate_clamped(5) == 0.0
        assert seg.evaluate_clamped(25) == 10.0
        assert seg.evaluate_clamped(12) == 2.0

    def test_immutability(self):
        seg = Segment(t_start=0, t_end=1, slope=0.0, value_at_start=0.0)
        with pytest.raises(AttributeError):
            seg.slope = 1.0  # type: ignore[misc]


class TestPiecewiseLinearFunction:
    def test_initial_value_before_first_segment(self):
        fn = PiecewiseLinearFunction(initial_value=9.0)
        fn.append(Segment(t_start=10, t_end=20, slope=0.0, value_at_start=1.0))
        assert fn.value_at(5) == 9.0
        assert fn.value_at(15) == 1.0

    def test_segment_selection(self):
        fn = PiecewiseLinearFunction()
        fn.append(Segment(t_start=0, t_end=10, slope=1.0, value_at_start=0.0))
        fn.append(Segment(t_start=20, t_end=30, slope=0.0, value_at_start=99.0))
        assert fn.value_at(5) == 5.0
        assert fn.value_at(15) == 10.0  # gap: clamped to first segment end
        assert fn.value_at(25) == 99.0
        assert fn.value_at(1000) == 99.0

    def test_rejects_out_of_order_appends(self):
        fn = PiecewiseLinearFunction()
        fn.append(Segment(t_start=10, t_end=20, slope=0.0, value_at_start=0.0))
        with pytest.raises(ValueError):
            fn.append(Segment(t_start=10, t_end=25, slope=0.0, value_at_start=0.0))

    def test_words_accounting(self):
        fn = PiecewiseLinearFunction()
        assert fn.words() == 0
        fn.append(Segment(t_start=0, t_end=1, slope=0.0, value_at_start=0.0))
        fn.append(Segment(t_start=2, t_end=3, slope=0.0, value_at_start=0.0))
        assert fn.words() == 6
        assert len(fn) == 2
        assert len(list(iter(fn))) == 2


class TestPiecewiseConstantFunction:
    def test_predecessor_read(self):
        fn = PiecewiseConstantFunction(initial_value=0.0)
        fn.append(5, 10.0)
        fn.append(9, 20.0)
        assert fn.value_at(4) == 0.0
        assert fn.value_at(5) == 10.0
        assert fn.value_at(8) == 10.0
        assert fn.value_at(100) == 20.0

    def test_rejects_out_of_order(self):
        fn = PiecewiseConstantFunction()
        fn.append(5, 1.0)
        with pytest.raises(ValueError):
            fn.append(5, 2.0)

    def test_words(self):
        fn = PiecewiseConstantFunction()
        fn.append(1, 1.0)
        fn.append(2, 2.0)
        assert fn.words() == 4


class TestOnlinePWC:
    def test_rejects_nonpositive_delta(self):
        with pytest.raises(ValueError):
            OnlinePWC(delta=0)

    def test_records_only_on_deviation(self):
        pwc = OnlinePWC(delta=5.0)
        for t, v in enumerate([1, 2, 3, 4, 5], start=1):
            pwc.feed(t, float(v))
        assert len(pwc.function) == 0  # never deviated by > 5
        pwc.feed(6, 7.0)
        assert len(pwc.function) == 1

    def test_read_error_bounded_by_delta(self):
        """Invariant: |recorded read - true value| <= delta at feed times."""
        import numpy as np

        rng = np.random.default_rng(11)
        delta = 7.0
        pwc = OnlinePWC(delta=delta)
        values = {}
        v = 0.0
        for t in range(1, 2000):
            v += float(rng.choice([-1, 0, 1]))
            pwc.feed(t, v)
            values[t] = v
        for t, v in values.items():
            assert abs(pwc.value_at(t) - v) <= delta

    @settings(max_examples=50)
    @given(
        st.lists(st.integers(min_value=-3, max_value=3), min_size=1, max_size=100),
        st.floats(min_value=1.0, max_value=10.0),
    )
    def test_error_bound_property(self, steps, delta):
        pwc = OnlinePWC(delta=delta)
        v = 0.0
        history = []
        for t, dv in enumerate(steps, start=1):
            v += dv
            pwc.feed(t, v)
            history.append((t, v))
        for t, v in history:
            assert abs(pwc.value_at(t) - v) <= delta

    def test_space_cliff_below_delta(self):
        """Counters that never exceed delta cost zero words (Fig. 3b)."""
        pwc = OnlinePWC(delta=100.0)
        for t in range(1, 50):
            pwc.feed(t, float(t))  # max value 49 < 100
        assert pwc.words() == 0
