"""Tests for the Carter-Wegman hash families."""

import random
from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import (
    BucketHashFamily,
    HashConfig,
    MERSENNE_PRIME,
    PolynomialHash,
    SignHashFamily,
)
from repro.hashing.carter_wegman import mod_mersenne, polynomial_hashes


class TestModMersenne:
    def test_small_values_unchanged(self):
        for x in (0, 1, 17, MERSENNE_PRIME - 1):
            assert mod_mersenne(x) == x

    def test_prime_maps_to_zero(self):
        assert mod_mersenne(MERSENNE_PRIME) == 0
        assert mod_mersenne(2 * MERSENNE_PRIME) == 0

    @given(st.integers(min_value=0, max_value=MERSENNE_PRIME**2 * 4))
    def test_matches_builtin_mod(self, x):
        assert mod_mersenne(x) == x % MERSENNE_PRIME


class TestPolynomialHash:
    def test_rejects_degree_zero(self):
        with pytest.raises(ValueError):
            PolynomialHash(0, random.Random(1))

    def test_deterministic_given_rng_state(self):
        a = PolynomialHash(3, random.Random(5))
        b = PolynomialHash(3, random.Random(5))
        assert all(a(x) == b(x) for x in range(100))

    def test_values_in_field(self):
        h = PolynomialHash(4, random.Random(9))
        for x in range(0, 10_000, 37):
            assert 0 <= h(x) < MERSENNE_PRIME

    def test_leading_coefficient_nonzero(self):
        for seed in range(20):
            h = PolynomialHash(2, random.Random(seed))
            assert h.coefficients[-1] != 0

    def test_hash_array_matches_scalar(self):
        h = PolynomialHash(4, random.Random(3))
        xs = list(range(0, 5000, 113))
        arr = h.hash_array(xs)
        assert arr.dtype == np.uint64
        assert [int(v) for v in arr] == [h(x) for x in xs]

    def test_degree_one_is_constant(self):
        h = PolynomialHash(1, random.Random(2))
        assert h(0) == h(12345)

    def test_pairwise_collision_rate(self):
        """Pairwise independence: collision probability ~ 1/buckets."""
        buckets = 64
        hashes = polynomial_hashes(30, degree=2, seed=11)
        collisions = sum(
            1 for h in hashes for x in range(20) if
            h(x) % buckets == h(x + 1000) % buckets
        )
        trials = 30 * 20
        # Expected rate 1/64 ~ 1.6%; allow generous slack.
        assert collisions / trials < 0.08


class TestBucketHashFamily:
    def test_shape_and_range(self):
        family = BucketHashFamily(HashConfig(width=32, depth=4, seed=1))
        for item in range(200):
            cols = family.buckets(item)
            assert len(cols) == 4
            assert all(0 <= c < 32 for c in cols)

    def test_memoisation_returns_same_tuple(self):
        family = BucketHashFamily(HashConfig(width=32, depth=4, seed=1))
        assert family.buckets(7) is family.buckets(7)

    def test_same_config_same_function(self):
        config = HashConfig(width=64, depth=3, seed=9)
        a, b = BucketHashFamily(config), BucketHashFamily(config)
        assert all(a.buckets(x) == b.buckets(x) for x in range(100))

    def test_different_seeds_differ(self):
        a = BucketHashFamily(HashConfig(width=1024, depth=3, seed=1))
        b = BucketHashFamily(HashConfig(width=1024, depth=3, seed=2))
        assert any(a.buckets(x) != b.buckets(x) for x in range(50))

    def test_bucket_accessor(self):
        family = BucketHashFamily(HashConfig(width=32, depth=4, seed=1))
        assert family.bucket(2, 99) == family.buckets(99)[2]

    def test_spread_is_roughly_uniform(self):
        family = BucketHashFamily(HashConfig(width=16, depth=1, seed=4))
        counts = Counter(family.bucket(0, x) for x in range(4000))
        # Each of 16 buckets expects 250; chi-square-ish slack.
        assert max(counts.values()) < 400
        assert min(counts.values()) > 120

    @pytest.mark.parametrize("width,depth", [(0, 3), (4, 0), (-1, 2)])
    def test_invalid_config_rejected(self, width, depth):
        with pytest.raises(ValueError):
            HashConfig(width=width, depth=depth, seed=0)


class TestSignHashFamily:
    def test_values_are_signs(self):
        family = SignHashFamily(HashConfig(width=1, depth=5, seed=3))
        for item in range(200):
            assert all(s in (-1, 1) for s in family.signs(item))

    def test_signs_balanced(self):
        family = SignHashFamily(HashConfig(width=1, depth=1, seed=8))
        total = sum(family.sign(0, x) for x in range(4000))
        # Mean 0, sd ~ sqrt(4000) ~ 63; allow 5 sigma.
        assert abs(total) < 320

    def test_sign_accessor(self):
        family = SignHashFamily(HashConfig(width=1, depth=4, seed=3))
        assert family.sign(1, 42) == family.signs(42)[1]

    def test_fourwise_products_balanced(self):
        """4-wise independence: E[s(a)s(b)s(c)s(d)] = 0 for distinct keys."""
        family = SignHashFamily(HashConfig(width=1, depth=1, seed=6))
        rng = random.Random(0)
        total = 0
        trials = 2000
        for _ in range(trials):
            keys = rng.sample(range(100_000), 4)
            prod = 1
            for k in keys:
                prod *= family.sign(0, k)
            total += prod
        assert abs(total) < 5 * trials**0.5


@settings(max_examples=50)
@given(
    st.integers(min_value=1, max_value=2**40),
    st.integers(min_value=0, max_value=1000),
)
def test_bucket_family_stable_across_calls(item, seed):
    family = BucketHashFamily(HashConfig(width=128, depth=3, seed=seed))
    assert family.buckets(item) == family.buckets(item)
