"""Tests for O'Rourke's online PLA: correctness, optimality, reads."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linprog

from repro.pla.orourke import OnlinePLA
from repro.pla.segment import Segment


def brute_force_feasible(points: list[tuple[int, float]], delta: float) -> bool:
    """LP check: does a single line pass within delta of all points?"""
    a_ub, b_ub = [], []
    for t, v in points:
        a_ub.append([t, 1.0])
        b_ub.append(v + delta)
        a_ub.append([-t, -1.0])
        b_ub.append(-(v - delta))
    res = linprog(
        [0.0, 0.0], A_ub=a_ub, b_ub=b_ub,
        bounds=[(None, None), (None, None)], method="highs",
    )
    return res.status == 0


def brute_force_segments(points: list[tuple[int, float]], delta: float) -> int:
    """Optimal greedy segment count via LP feasibility (slow reference)."""
    count, current = 0, []
    for p in points:
        current.append(p)
        if not brute_force_feasible(current, delta):
            count += 1
            current = [p]
    return count + (1 if current else 0)


def feed_all(points, delta):
    pla = OnlinePLA(delta=delta)
    for t, v in points:
        pla.feed(t, v)
    return pla


class TestCorrectness:
    def test_single_point_run(self):
        pla = feed_all([(5, 3.0)], delta=1.0)
        fn = pla.finalize()
        assert len(fn) == 1
        assert fn.value_at(5) == 3.0

    def test_exact_line_is_one_segment(self):
        points = [(t, 2.0 * t + 1) for t in range(1, 200)]
        pla = feed_all(points, delta=0.5)
        fn = pla.finalize()
        assert len(fn) == 1
        for t, v in points:
            assert fn.value_at(t) == pytest.approx(v, abs=0.5 + 1e-9)

    def test_step_function_needs_segments(self):
        # Counter jumps by 10 > 2*delta each step: one run can still hold
        # them on a line, but a zig-zag cannot.
        points = [(1, 0.0), (2, 10.0), (3, 0.0), (4, 10.0), (5, 0.0)]
        pla = feed_all(points, delta=1.0)
        fn = pla.finalize()
        assert len(fn) >= 2

    def test_all_points_within_delta(self):
        rng = np.random.default_rng(7)
        delta = 4.0
        points = []
        v, t = 0.0, 0
        for _ in range(3000):
            t += int(rng.integers(1, 4))
            v += float(rng.choice([-1, 1]))
            points.append((t, v))
        pla = feed_all(points, delta)
        fn = pla.finalize()
        for t, v in points:
            assert abs(fn.value_at(t) - v) <= delta + 1e-6

    def test_monotone_counter_within_delta(self):
        rng = np.random.default_rng(3)
        delta = 3.0
        points = []
        v = 0
        for t in range(1, 2000):
            if rng.random() < 0.4:
                v += 1
                points.append((t, float(v)))
        fn = feed_all(points, delta).finalize()
        for t, v in points:
            assert abs(fn.value_at(t) - v) <= delta + 1e-6


class TestOptimality:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_lp_reference_on_walks(self, seed):
        rng = np.random.default_rng(seed)
        delta = 2.0
        points = []
        v = 0.0
        for t in range(1, 120):
            v += float(rng.choice([-1.0, 0.0, 1.0]))
            points.append((t, v))
        pla = feed_all(points, delta)
        fn = pla.finalize()
        assert len(fn) == brute_force_segments(points, delta)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=-5, max_value=5), min_size=2, max_size=40
        ),
        st.floats(min_value=0.5, max_value=5.0),
    )
    def test_optimal_and_correct_on_arbitrary_walks(self, deltas_v, delta):
        points = []
        v = 0.0
        for t, dv in enumerate(deltas_v, start=1):
            v += dv
            points.append((t, v))
        pla = feed_all(points, delta)
        fn = pla.finalize()
        assert len(fn) == brute_force_segments(points, delta)
        for t, v in points:
            assert abs(fn.value_at(t) - v) <= delta + 1e-6


class TestReads:
    def test_value_before_first_point_is_initial(self):
        pla = OnlinePLA(delta=1.0, initial_value=7.0)
        pla.feed(10, 20.0)
        assert pla.value_at(3) == 7.0

    def test_open_run_read_within_delta(self):
        delta = 2.0
        pla = OnlinePLA(delta=delta)
        points = [(t, float(t // 2)) for t in range(1, 50)]
        for t, v in points:
            pla.feed(t, v)
        # Nothing finalized, but reads must still be accurate.
        for t, v in points:
            assert abs(pla.value_at(t) - v) <= delta + 1e-6

    def test_read_in_gap_clamps_to_last_value(self):
        pla = OnlinePLA(delta=0.5)
        pla.feed(1, 1.0)
        pla.feed(2, 2.0)
        pla.finalize()
        # No changes between t=2 and any later time: value holds.
        assert pla.value_at(100) == pytest.approx(2.0, abs=0.5 + 1e-9)

    def test_read_beyond_open_run_clamps(self):
        pla = OnlinePLA(delta=0.5)
        pla.feed(1, 1.0)
        pla.feed(2, 2.0)
        assert pla.value_at(50) == pytest.approx(2.0, abs=0.5 + 1e-9)


class TestInterface:
    def test_rejects_nonpositive_delta(self):
        with pytest.raises(ValueError):
            OnlinePLA(delta=0.0)

    def test_rejects_non_increasing_times(self):
        pla = OnlinePLA(delta=1.0)
        pla.feed(1, 1.0)
        pla.feed(2, 2.0)
        with pytest.raises(ValueError):
            pla.feed(2, 3.0)

    def test_finalize_is_idempotent(self):
        pla = OnlinePLA(delta=1.0)
        pla.feed(1, 1.0)
        fn = pla.finalize()
        n = len(fn)
        assert len(pla.finalize()) == n

    def test_feed_after_finalize_starts_new_run(self):
        pla = OnlinePLA(delta=1.0)
        pla.feed(1, 1.0)
        pla.finalize()
        pla.feed(10, 100.0)
        fn = pla.finalize()
        assert len(fn) == 2
        assert fn.value_at(10) == pytest.approx(100.0, abs=1.0)

    def test_words_counts_emitted_segments_only(self):
        pla = OnlinePLA(delta=1.0)
        pla.feed(1, 1.0)
        assert pla.words() == 0  # open run is live state, not archive
        assert pla.segment_count() == 1
        assert pla.segment_count(include_open=False) == 0
        pla.finalize()
        assert pla.words() == 3

    def test_on_segment_callback(self):
        emitted: list[Segment] = []
        pla = OnlinePLA(delta=0.5, on_segment=emitted.append)
        pla.feed(1, 0.0)
        pla.feed(2, 10.0)
        pla.feed(3, 0.0)
        pla.finalize()
        assert len(emitted) >= 2
