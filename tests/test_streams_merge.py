"""Tests for multi-source stream merging and wall-clock mapping."""

import numpy as np
import pytest

from repro.core.persistent_countmin import PersistentCountMin
from repro.streams.merge import (
    TickMapping,
    merge_sources,
    split_window_by_wall_time,
)


class TestMerge:
    def test_merge_orders_by_wall_time(self):
        source_a = (np.array([10, 30, 50]), np.array([1, 1, 1]))
        source_b = (np.array([20, 40]), np.array([2, 2]))
        stream, mapping = merge_sources([source_a, source_b])
        assert list(stream.items) == [1, 2, 1, 2, 1]
        assert list(stream.times) == [1, 2, 3, 4, 5]
        assert list(mapping.wall_times) == [10, 20, 30, 40, 50]

    def test_stable_on_ties(self):
        source_a = (np.array([10, 10]), np.array([1, 2]))
        source_b = (np.array([10]), np.array([3]))
        stream, _ = merge_sources([source_a, source_b])
        assert list(stream.items) == [1, 2, 3]

    def test_empty(self):
        stream, mapping = merge_sources([])
        assert len(stream) == 0
        assert mapping.tick_for(100) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            merge_sources([(np.array([2, 1]), np.array([1, 1]))])
        with pytest.raises(ValueError):
            merge_sources([(np.array([1]), np.array([1, 2]))])


class TestTickMapping:
    def test_tick_for(self):
        mapping = TickMapping(np.array([10, 20, 20, 30]))
        assert mapping.tick_for(5) == 0
        assert mapping.tick_for(10) == 1
        assert mapping.tick_for(20) == 3  # both tied events included
        assert mapping.tick_for(99) == 4

    def test_wall_for(self):
        mapping = TickMapping(np.array([10, 20]))
        assert mapping.wall_for(2) == 20
        with pytest.raises(ValueError):
            mapping.wall_for(0)
        with pytest.raises(ValueError):
            mapping.wall_for(3)

    def test_window_translation(self):
        mapping = TickMapping(np.array([10, 20, 30, 40]))
        assert mapping.window(10, 30) == (1, 3)

    def test_split_boundaries(self):
        mapping = TickMapping(np.array([5, 15, 25, 35, 45]))
        windows = split_window_by_wall_time(mapping, [0, 20, 40, 60])
        assert windows == [(0, 2), (2, 4), (4, 5)]
        with pytest.raises(ValueError):
            split_window_by_wall_time(mapping, [10])
        with pytest.raises(ValueError):
            split_window_by_wall_time(mapping, [20, 10])


class TestEndToEnd:
    def test_wall_clock_queries_through_sketch(self):
        """Merge two collectors, sketch the ticks, query by wall clock."""
        rng = np.random.default_rng(9)
        wall_a = np.sort(rng.integers(0, 3600, size=500))
        wall_b = np.sort(rng.integers(0, 3600, size=500))
        items_a = np.full(500, 7)
        items_b = rng.integers(100, 200, size=500)
        stream, mapping = merge_sources(
            [(wall_a, items_a), (wall_b, items_b)]
        )
        sketch = PersistentCountMin(width=512, depth=4, delta=4)
        sketch.ingest(stream)
        # "How many 7s between 09:10 and 09:30?" in wall-clock terms:
        s_tick, t_tick = mapping.window(600, 1800)
        actual = int(((wall_a > 600) & (wall_a <= 1800)).sum())
        assert sketch.point(7, s_tick, t_tick) == pytest.approx(
            actual, abs=12
        )


class TestRaggedSources:
    """Robustness: out-of-order and duplicate-heavy collector inputs."""

    def test_out_of_order_across_sources(self):
        """Collectors may be mutually unsorted; the merge fixes it."""
        late_collector = (np.array([100, 200, 300]), np.array([1, 1, 1]))
        early_collector = (np.array([5, 150, 250]), np.array([2, 2, 2]))
        stream, mapping = merge_sources([late_collector, early_collector])
        assert list(mapping.wall_times) == [5, 100, 150, 200, 250, 300]
        assert list(stream.items) == [2, 1, 2, 1, 2, 1]
        # The merged tick axis is strictly increasing — safe to sketch.
        assert list(stream.times) == [1, 2, 3, 4, 5, 6]

    def test_duplicate_timestamps_within_and_across_sources(self):
        source_a = (np.array([10, 10, 20]), np.array([1, 2, 3]))
        source_b = (np.array([10, 20, 20]), np.array([4, 5, 6]))
        stream, mapping = merge_sources([source_a, source_b])
        # Every tied event keeps its own tick; axis stays strict.
        assert len(stream) == 6
        assert list(stream.times) == [1, 2, 3, 4, 5, 6]
        assert all(
            t2 > t1 for t1, t2 in zip(stream.times, stream.times[1:])
        )
        # Stable: a's ties precede b's at the same wall time.
        assert list(stream.items) == [1, 2, 4, 3, 5, 6]

    def test_merged_axis_strictly_increasing_property(self):
        rng = np.random.default_rng(42)
        sources = []
        for _ in range(5):
            n = int(rng.integers(1, 40))
            # Coarse wall clock → plenty of collisions.
            walls = np.sort(rng.integers(0, 20, size=n))
            sources.append((walls, rng.integers(0, 100, size=n)))
        stream, mapping = merge_sources(sources)
        total = sum(len(walls) for walls, _items in sources)
        assert len(stream) == total
        assert list(stream.times) == list(range(1, total + 1))
        assert (np.diff(mapping.wall_times) >= 0).all()

    def test_tick_mapping_round_trip(self):
        source_a = (np.array([10, 10, 30]), np.array([1, 1, 1]))
        source_b = (np.array([20, 30]), np.array([2, 2]))
        _stream, mapping = merge_sources([source_a, source_b])
        # wall -> tick -> wall lands back on the same wall time for
        # every event; tick -> wall -> tick lands on the last tick of
        # that wall time (duplicates collapse forward, never backward).
        for tick in range(1, len(mapping.wall_times) + 1):
            wall = mapping.wall_for(tick)
            back = mapping.tick_for(wall)
            assert back >= tick
            assert mapping.wall_for(back) == wall
        for wall in [10, 20, 30]:
            assert mapping.wall_for(mapping.tick_for(wall)) == wall
