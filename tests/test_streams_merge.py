"""Tests for multi-source stream merging and wall-clock mapping."""

import numpy as np
import pytest

from repro.core.persistent_countmin import PersistentCountMin
from repro.streams.merge import (
    TickMapping,
    merge_sources,
    split_window_by_wall_time,
)


class TestMerge:
    def test_merge_orders_by_wall_time(self):
        source_a = (np.array([10, 30, 50]), np.array([1, 1, 1]))
        source_b = (np.array([20, 40]), np.array([2, 2]))
        stream, mapping = merge_sources([source_a, source_b])
        assert list(stream.items) == [1, 2, 1, 2, 1]
        assert list(stream.times) == [1, 2, 3, 4, 5]
        assert list(mapping.wall_times) == [10, 20, 30, 40, 50]

    def test_stable_on_ties(self):
        source_a = (np.array([10, 10]), np.array([1, 2]))
        source_b = (np.array([10]), np.array([3]))
        stream, _ = merge_sources([source_a, source_b])
        assert list(stream.items) == [1, 2, 3]

    def test_empty(self):
        stream, mapping = merge_sources([])
        assert len(stream) == 0
        assert mapping.tick_for(100) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            merge_sources([(np.array([2, 1]), np.array([1, 1]))])
        with pytest.raises(ValueError):
            merge_sources([(np.array([1]), np.array([1, 2]))])


class TestTickMapping:
    def test_tick_for(self):
        mapping = TickMapping(np.array([10, 20, 20, 30]))
        assert mapping.tick_for(5) == 0
        assert mapping.tick_for(10) == 1
        assert mapping.tick_for(20) == 3  # both tied events included
        assert mapping.tick_for(99) == 4

    def test_wall_for(self):
        mapping = TickMapping(np.array([10, 20]))
        assert mapping.wall_for(2) == 20
        with pytest.raises(ValueError):
            mapping.wall_for(0)
        with pytest.raises(ValueError):
            mapping.wall_for(3)

    def test_window_translation(self):
        mapping = TickMapping(np.array([10, 20, 30, 40]))
        assert mapping.window(10, 30) == (1, 3)

    def test_split_boundaries(self):
        mapping = TickMapping(np.array([5, 15, 25, 35, 45]))
        windows = split_window_by_wall_time(mapping, [0, 20, 40, 60])
        assert windows == [(0, 2), (2, 4), (4, 5)]
        with pytest.raises(ValueError):
            split_window_by_wall_time(mapping, [10])
        with pytest.raises(ValueError):
            split_window_by_wall_time(mapping, [20, 10])


class TestEndToEnd:
    def test_wall_clock_queries_through_sketch(self):
        """Merge two collectors, sketch the ticks, query by wall clock."""
        rng = np.random.default_rng(9)
        wall_a = np.sort(rng.integers(0, 3600, size=500))
        wall_b = np.sort(rng.integers(0, 3600, size=500))
        items_a = np.full(500, 7)
        items_b = rng.integers(100, 200, size=500)
        stream, mapping = merge_sources(
            [(wall_a, items_a), (wall_b, items_b)]
        )
        sketch = PersistentCountMin(width=512, depth=4, delta=4)
        sketch.ingest(stream)
        # "How many 7s between 09:10 and 09:30?" in wall-clock terms:
        s_tick, t_tick = mapping.window(600, 1800)
        actual = int(((wall_a > 600) & (wall_a <= 1800)).sum())
        assert sketch.point(7, s_tick, t_tick) == pytest.approx(
            actual, abs=12
        )
