"""Tests for the exact ground-truth structure."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams.model import Stream
from repro.streams.truth import GroundTruth


def brute_frequency(stream, item, s, t):
    return sum(
        int(c)
        for time, i, c in zip(stream.times, stream.items, stream.counts)
        if i == item and s < time <= t
    )


class TestWindows:
    def test_frequency_full_stream(self, tiny_stream):
        truth = GroundTruth(tiny_stream)
        assert truth.frequency(1) == 4
        assert truth.frequency(2) == 3
        assert truth.frequency(3) == 2
        assert truth.frequency(4) == 1
        assert truth.frequency(99) == 0

    def test_frequency_windows(self, tiny_stream):
        # items: 1,2,1,3,1,2,4,1,2,3 at times 1..10
        truth = GroundTruth(tiny_stream)
        assert truth.frequency(1, s=0, t=5) == 3
        assert truth.frequency(1, s=5, t=10) == 1
        assert truth.frequency(2, s=2, t=9) == 2  # window excludes s
        assert truth.frequency(3, s=4, t=10) == 1

    def test_window_l1(self, tiny_stream):
        truth = GroundTruth(tiny_stream)
        assert truth.window_l1() == 10
        assert truth.window_l1(s=3, t=7) == 4

    def test_self_join(self, tiny_stream):
        truth = GroundTruth(tiny_stream)
        assert truth.self_join_size() == 16 + 9 + 4 + 1
        assert truth.self_join_size(s=0, t=2) == 1 + 1

    def test_join_size(self):
        a = GroundTruth(Stream(items=[1, 1, 2]))
        b = GroundTruth(Stream(items=[1, 3, 2, 2]))
        assert a.join_size(b) == 2 * 1 + 1 * 2
        assert b.join_size(a) == a.join_size(b)

    def test_heavy_hitters(self, tiny_stream):
        truth = GroundTruth(tiny_stream)
        heavy = truth.heavy_hitters(phi=0.3)
        assert set(heavy) == {1, 2}

    def test_top_k(self, tiny_stream):
        truth = GroundTruth(tiny_stream)
        assert truth.top_k(2) == [(1, 4), (2, 3)]
        # Windowed top-k drops items absent from the window.
        assert truth.top_k(10, s=6, t=7)[0] == (4, 1)

    def test_empty_stream(self):
        truth = GroundTruth(Stream(items=[]))
        assert truth.frequency(1) == 0
        assert truth.window_l1() == 0
        assert truth.top_k(5) == []


class TestTurnstile:
    def test_deletions(self):
        stream = Stream(items=[1, 1, 1, 1], counts=[1, 1, -1, 1])
        truth = GroundTruth(stream)
        assert truth.frequency(1) == 2
        assert truth.frequency(1, s=0, t=3) == 1
        assert truth.window_l1() == 2
        assert truth.self_join_size() == 4


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=8), min_size=1, max_size=60),
    st.integers(min_value=0, max_value=60),
    st.integers(min_value=0, max_value=60),
)
def test_matches_brute_force(items, s, t):
    if s > t:
        s, t = t, s
    stream = Stream(items=items)
    truth = GroundTruth(stream)
    for item in range(9):
        assert truth.frequency(item, s, t) == brute_frequency(stream, item, s, t)
    window = [
        i for time, i in zip(stream.times, stream.items) if s < time <= t
    ]
    counts = Counter(int(i) for i in window)
    assert truth.window_l1(s, t) == len(window)
    assert truth.self_join_size(s, t) == sum(c * c for c in counts.values())
