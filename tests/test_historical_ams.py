"""Tests for the epoch-adaptive historical AMS sketch (Section 5.2)."""

import math

import pytest

from repro.core.historical_ams import HistoricalAMS
from repro.streams.generators import zipf_stream
from repro.streams.truth import GroundTruth


@pytest.fixture(scope="module")
def ingested():
    stream = zipf_stream(6000, universe=2**20, exponent=2.0, seed=61)
    truth = GroundTruth(stream)
    sketch = HistoricalAMS(
        width=1024, depth=5, eps=0.05, seed=7, expected_length=6000
    )
    sketch.ingest(stream)
    return stream, truth, sketch


class TestValidation:
    def test_eps_range(self):
        with pytest.raises(ValueError):
            HistoricalAMS(width=16, depth=2, eps=0.0)

    def test_window_queries_rejected(self, ingested):
        _, _, sketch = ingested
        with pytest.raises(ValueError):
            sketch.point(1, s=5, t=10)

    def test_self_join_needs_copies(self):
        sketch = HistoricalAMS(width=16, depth=2, eps=0.1, independent_copies=1)
        sketch.update(1)
        with pytest.raises(ValueError):
            sketch.self_join_size(t=1)

    def test_empty_sketch(self):
        sketch = HistoricalAMS(width=16, depth=2, eps=0.1)
        assert sketch.point(1, t=0) == 0.0
        assert sketch.self_join_size(t=0) == 0.0


class TestAccuracy:
    def test_point_error_scales_with_l2(self, ingested):
        """Theorem 5.4: error <= eps * ||f_t||_2 (constants absorbed)."""
        _, truth, sketch = ingested
        for t in (500, 2000, 6000):
            l2 = math.sqrt(truth.self_join_size(0, t))
            bound = 8 * (sketch.eps + 2.0 / math.sqrt(sketch.width)) * l2 + 4
            for item, freq in truth.top_k(10, 0, t):
                estimate = sketch.point(item, t=t)
                assert abs(estimate - freq) <= bound

    def test_self_join_relative_error(self, ingested):
        _, truth, sketch = ingested
        for t in (1000, 3000, 6000):
            actual = truth.self_join_size(0, t)
            estimate = sketch.self_join_size(t=t)
            assert abs(estimate - actual) <= 0.6 * actual

    def test_join_between_streams(self):
        stream_f = zipf_stream(3000, universe=2**16, exponent=2.0, seed=62)
        stream_g = zipf_stream(3000, universe=2**16, exponent=2.0, seed=62)
        truth_f, truth_g = GroundTruth(stream_f), GroundTruth(stream_g)
        kwargs = dict(width=1024, depth=5, eps=0.05, seed=8,
                      expected_length=3000)
        f, g = HistoricalAMS(**kwargs), HistoricalAMS(**kwargs)
        f.ingest(stream_f)
        g.ingest(stream_g)
        t = 2500
        actual = truth_f.join_size(truth_g, 0, t)
        estimate = f.join_size(g, t=t)
        bound = 0.6 * math.sqrt(
            truth_f.self_join_size(0, t) * truth_g.self_join_size(0, t)
        )
        assert abs(estimate - actual) <= bound

    def test_join_requires_shared_hashes(self):
        a = HistoricalAMS(width=64, depth=3, eps=0.1, seed=1)
        b = HistoricalAMS(width=64, depth=3, eps=0.1, seed=2)
        with pytest.raises(ValueError):
            a.join_size(b)


class TestEpochs:
    def test_epochs_track_l2_growth(self, ingested):
        _, _, sketch = ingested
        # ||f_t||_2 grows from 1 to ~||f_m||_2; epochs ~ log2 of that.
        assert 2 <= sketch.epoch_count() <= 20

    def test_space_sublinear(self, ingested):
        stream, _, sketch = ingested
        assert sketch.persistence_words() < 3 * len(stream)

    def test_ephemeral_words(self, ingested):
        _, _, sketch = ingested
        assert sketch.ephemeral_words() == 2 * 1024 * 5
