"""Tests for historical window quantiles and range counts."""

import numpy as np
import pytest

from repro.core.heavy_hitters import PersistentHeavyHitters
from repro.core.quantiles import PersistentQuantiles
from repro.streams.model import Stream


@pytest.fixture(scope="module")
def values_and_quantiles():
    """A stream of numeric readings with a known distribution shift."""
    rng = np.random.default_rng(111)
    first = rng.integers(100, 200, size=3000)  # early regime
    second = rng.integers(600, 700, size=3000)  # late regime
    items = np.concatenate([first, second])
    stream = Stream(items=items, universe=1024)
    quantiles = PersistentQuantiles(
        universe=1024, width=1024, depth=4, delta=8
    )
    quantiles.ingest(stream)
    return items, quantiles


def true_quantile(values, phi):
    ordered = np.sort(values)
    idx = min(len(ordered) - 1, int(phi * len(ordered)))
    return int(ordered[idx])


class TestRank:
    def test_rank_monotone_in_value(self, values_and_quantiles):
        _, quantiles = values_and_quantiles
        ranks = [quantiles.rank(v) for v in (50, 150, 400, 650, 1023)]
        assert ranks == sorted(ranks)

    def test_rank_endpoints(self, values_and_quantiles):
        items, quantiles = values_and_quantiles
        assert quantiles.rank(1023) == pytest.approx(len(items), rel=0.05)
        assert quantiles.rank(50) <= 0.02 * len(items)

    def test_rank_validation(self, values_and_quantiles):
        _, quantiles = values_and_quantiles
        with pytest.raises(ValueError):
            quantiles.rank(-1)
        with pytest.raises(ValueError):
            quantiles.rank(1024)


class TestRangeCount:
    def test_window_range_count(self, values_and_quantiles):
        items, quantiles = values_and_quantiles
        # First half of the stream: values all in [100, 200).
        estimate = quantiles.range_count(100, 199, s=0, t=3000)
        assert estimate == pytest.approx(3000, rel=0.1)
        assert quantiles.range_count(600, 699, s=0, t=3000) <= 300


class TestQuantiles:
    def test_median_shifts_with_window(self, values_and_quantiles):
        items, quantiles = values_and_quantiles
        early = quantiles.median(s=0, t=3000)
        late = quantiles.median(s=3000, t=6000)
        overall = quantiles.median()
        assert 100 <= early <= 210
        assert 590 <= late <= 710
        # Median of the union falls between the regimes' boundaries.
        assert 150 <= overall <= 700

    def test_quantiles_track_truth(self, values_and_quantiles):
        items, quantiles = values_and_quantiles
        for phi in (0.1, 0.25, 0.75, 0.9):
            estimate = quantiles.quantile(phi)
            truth = true_quantile(items, phi)
            # Rank error translates to a small phi offset; compare ranks.
            true_rank = np.searchsorted(np.sort(items), estimate, "right")
            assert abs(true_rank / len(items) - phi) < 0.08

    def test_batch_quantiles_sorted(self, values_and_quantiles):
        _, quantiles = values_and_quantiles
        batch = quantiles.quantiles([0.1, 0.5, 0.9])
        assert batch == sorted(batch)

    def test_phi_validation(self, values_and_quantiles):
        _, quantiles = values_and_quantiles
        with pytest.raises(ValueError):
            quantiles.quantile(1.5)


class TestConstruction:
    def test_requires_universe_or_hierarchy(self):
        with pytest.raises(ValueError):
            PersistentQuantiles()

    def test_shared_hierarchy(self, values_and_quantiles):
        """Quantiles and heavy hitters can share one index."""
        items, _ = values_and_quantiles
        hierarchy = PersistentHeavyHitters(
            universe=1024, width=1024, depth=4, delta=8
        )
        hierarchy.ingest(Stream(items=items, universe=1024))
        quantiles = PersistentQuantiles(hierarchy=hierarchy)
        assert quantiles.universe == 1024
        assert 100 <= quantiles.median(s=0, t=3000) <= 210
        assert quantiles.persistence_words() == hierarchy.persistence_words()
