"""Rule-by-rule tests of the sketchlint static analyzer.

Every SLxxx rule gets at least one fixture that triggers it and one that
passes clean, plus engine-level tests (suppression, scoping, selection,
output formats, exit codes, self-check on ``src/``).
"""

import json
import textwrap
from io import StringIO
from pathlib import Path

import pytest

from repro.analysis import RULES, lint_source
from repro.analysis.sketchlint import lint_paths, run_lint

SRC_PATH = "src/repro/core/module.py"  # in-scope for every rule


def codes(source, path=SRC_PATH, select=None):
    """Lint a snippet and return the set of rule codes found."""
    return {
        finding.code
        for finding in lint_source(textwrap.dedent(source), path, select=select)
    }


# --------------------------------------------------------------------- #
# SL001 — unseeded / module-global RNG
# --------------------------------------------------------------------- #


def test_sl001_flags_module_global_random():
    assert "SL001" in codes(
        """
        import random
        x = random.random()
        """
    )


def test_sl001_flags_unseeded_constructors():
    assert "SL001" in codes("rng = Random()\n")
    assert "SL001" in codes("rng = np.random.default_rng()\n")
    assert "SL001" in codes("x = np.random.rand(5)\n")


def test_sl001_passes_seeded_rng():
    assert "SL001" not in codes(
        """
        from random import Random
        rng = Random(7)
        value = rng.random()
        generator = np.random.default_rng(seed)
        """
    )


def test_sl001_exempts_stream_generators():
    source = "x = random.random()\n"
    assert "SL001" not in codes(source, path="src/repro/streams/generators.py")
    assert "SL001" in codes(source, path="src/repro/streams/other.py")


# --------------------------------------------------------------------- #
# SL002 — float equality
# --------------------------------------------------------------------- #


def test_sl002_flags_float_equality():
    assert "SL002" in codes("ok = slope == 0.5\n")
    assert "SL002" in codes("ok = float(a) != b\n")
    assert "SL002" in codes("ok = (a / b) == c\n")


def test_sl002_passes_integer_equality_and_tolerance():
    assert "SL002" not in codes("ok = count == 0\n")
    assert "SL002" not in codes("ok = abs(a - b) < 1e-9\n")


# --------------------------------------------------------------------- #
# SL003 — mutable defaults
# --------------------------------------------------------------------- #


def test_sl003_flags_mutable_default():
    assert "SL003" in codes("def f(xs=[]):\n    return xs\n")
    assert "SL003" in codes("def f(*, m=dict()):\n    return m\n")


def test_sl003_passes_none_default():
    assert "SL003" not in codes(
        """
        def f(xs=None):
            return [] if xs is None else xs
        """
    )


# --------------------------------------------------------------------- #
# SL004 — broad except
# --------------------------------------------------------------------- #


def test_sl004_flags_bare_and_broad_except():
    assert "SL004" in codes(
        """
        try:
            work()
        except:
            pass
        """
    )
    assert "SL004" in codes(
        """
        try:
            work()
        except Exception:
            cleanup()
        """
    )


def test_sl004_passes_narrow_or_reraising_handlers():
    assert "SL004" not in codes(
        """
        try:
            work()
        except ValueError:
            cleanup()
        """
    )
    assert "SL004" not in codes(
        """
        try:
            work()
        except Exception:
            cleanup()
            raise
        """
    )


# --------------------------------------------------------------------- #
# SL005 — assert in library code
# --------------------------------------------------------------------- #


def test_sl005_flags_assert_under_src():
    assert "SL005" in codes("assert delta > 0\n")


def test_sl005_ignores_tests_and_benchmarks():
    assert "SL005" not in codes(
        "assert delta > 0\n", path="benchmarks/bench_fig1.py"
    )
    assert "SL005" not in codes("assert delta > 0\n", path="tests/test_x.py")


# --------------------------------------------------------------------- #
# SL006 — future annotations import
# --------------------------------------------------------------------- #


def test_sl006_flags_missing_future_import():
    assert "SL006" in codes("import math\n")


def test_sl006_passes_with_future_import_or_empty_module():
    assert "SL006" not in codes(
        "from __future__ import annotations\nimport math\n"
    )
    assert "SL006" not in codes("")


# --------------------------------------------------------------------- #
# SL007 — untyped public API
# --------------------------------------------------------------------- #


def test_sl007_flags_untyped_public_method():
    source = """
        class Sketch:
            def point(self, item, s=0):
                return 0
    """
    assert "SL007" in codes(source)


def test_sl007_passes_annotated_and_out_of_scope():
    annotated = """
        class Sketch:
            def point(self, item: int, s: float = 0) -> float:
                return 0.0

            def _internal(self, anything):
                return anything
    """
    assert "SL007" not in codes(annotated)
    untyped = """
        class Helper:
            def render(self, chart):
                return chart
    """
    assert "SL007" not in codes(untyped, path="src/repro/eval/module.py")


# --------------------------------------------------------------------- #
# SL008 — unguarded timestamp ingest
# --------------------------------------------------------------------- #


def test_sl008_flags_unguarded_feed():
    assert "SL008" in codes(
        """
        class Tracker:
            def feed(self, t, value):
                self.value = value
        """
    )


def test_sl008_passes_guarded_or_contracted_feed():
    guarded = """
        class Tracker:
            def feed(self, t, value):
                if t <= self.last:
                    raise ValueError("time went backwards")
                self.value = value
    """
    assert "SL008" not in codes(guarded)
    contracted = """
        class Tracker:
            @contracts.monotone_timestamps(param="t")
            def feed(self, t, value):
                self.value = value
    """
    assert "SL008" not in codes(contracted)


# --------------------------------------------------------------------- #
# SL009 — non-atomic writes in durability-critical packages
# --------------------------------------------------------------------- #


def test_sl009_flags_direct_writes_in_durable_scopes():
    source = 'path.write_text("data")\n'
    for scope in ("store", "io", "runtime"):
        assert "SL009" in codes(source, path=f"src/repro/{scope}/module.py")
    assert "SL009" in codes(
        'path.write_bytes(b"data")\n', path="src/repro/store/store.py"
    )


def test_sl009_ignores_other_packages_and_tests():
    source = 'path.write_text("data")\n'
    assert "SL009" not in codes(source, path="src/repro/core/module.py")
    assert "SL009" not in codes(source, path="tests/test_store.py")


def test_sl009_suppression():
    source = (
        'path.write_text("x")  # sketchlint: disable=SL009 — staging file\n'
    )
    assert "SL009" not in codes(source, path="src/repro/io/module.py")


def test_sl009_passes_atomic_helpers():
    source = """
        from repro.io.atomic import atomic_write_text
        atomic_write_text(path, "data")
    """
    assert "SL009" not in codes(source, path="src/repro/runtime/module.py")


# --------------------------------------------------------------------- #
# SL010 — per-record scalar loops on hot paths
# --------------------------------------------------------------------- #


def test_sl010_flags_zip_loop_over_stream_columns():
    source = """
        for t, i, c in zip(stream.times, stream.items, stream.counts):
            sketch.update(i, c, t)
    """
    assert "SL010" in codes(source)
    tolist = """
        for t, i in zip(times.tolist(), items.tolist()):
            handle(t, i)
    """
    assert "SL010" in codes(tolist, path="src/repro/sketch/module.py")


def test_sl010_flags_enumerated_zip_and_scalar_hashing_in_loops():
    enumerated = """
        for idx, (t, i) in enumerate(zip(times, items)):
            handle(idx, t, i)
    """
    assert "SL010" in codes(enumerated)
    hashing = """
        for row, col in enumerate(self.hashes.buckets(item)):
            counters[row][col] += count
    """
    assert "SL010" in codes(hashing)
    signs = """
        while pending:
            sgns = self.signs.signs(pending.pop())
    """
    assert "SL010" in codes(signs)


def test_sl010_passes_vectorized_and_unrelated_loops():
    assert "SL010" not in codes(
        """
        columns = self.hashes.buckets_many(items)
        for row in range(self.depth):
            np.add.at(self.counters[row], columns[row], counts)
        """
    )
    assert "SL010" not in codes("cols = self.hashes.buckets(item)\n")
    assert "SL010" not in codes(
        """
        for a, b in zip(starts, ends):
            handle(a, b)
        """
    )


def test_sl010_scoped_to_core_and_sketch():
    source = """
        for t, i, c in zip(stream.times, stream.items, stream.counts):
            sketch.update(i, c, t)
    """
    assert "SL010" not in codes(source, path="src/repro/streams/model.py")
    assert "SL010" not in codes(source, path="benchmarks/bench_x.py")
    assert "SL010" not in codes(source, path="tests/test_core.py")


def test_sl010_suppression_for_scalar_references():
    source = (
        "for t, i in zip(times, items):  "
        "# sketchlint: disable=SL010 — scalar reference\n"
        "    feed(t, i)\n"
    )
    assert "SL010" not in codes(source)


# --------------------------------------------------------------------- #
# SL011 — RNG shared across fork/pool dispatch
# --------------------------------------------------------------------- #


def test_sl011_flags_rng_near_pool_submit():
    source = """
        def dispatch(self, times, items, counts, pool):
            draws = self._rng.random(len(times))
            pool.feed([(times, items, counts)] * pool.nworkers)
    """
    assert "SL011" in codes(source)


def test_sl011_flags_rng_captured_by_fork_launcher():
    source = """
        def launch(self, tasks):
            rng = self._rng
            return parallel_map(lambda t: rng.random(), tasks, 4)
    """
    assert "SL011" in codes(source)


def test_sl011_passes_predrawn_and_spawned_generators():
    predrawn = """
        def dispatch(self, times, pool):
            uniforms = bulk_uniforms(self._rng, len(times))
            pool.feed([(uniforms, times)] * pool.nworkers)
    """
    assert "SL011" not in codes(predrawn)
    spawned = """
        def launch(self, tasks):
            children = self._rng.spawn(4)
            return parallel_map(run, list(zip(children, tasks)), 4)
    """
    assert "SL011" not in codes(spawned)


def test_sl011_passes_rng_free_dispatch_and_non_pool_feed():
    assert "SL011" not in codes(
        """
        def launch(tasks):
            return parallel_map(compute, tasks, 4)
        """
    )
    # tracker.feed is a tracker primitive, not a pool submission.
    assert "SL011" not in codes(
        """
        def apply(self, tracker, times):
            values = self._rng.random(len(times))
            tracker.feed(times, values)
        """
    )


def test_sl011_suppression_for_deliberate_broadcast():
    source = (
        "def launch(self, tasks):\n"
        "    rng = self._rng\n"
        "    return parallel_map(lambda t: rng.bit_count(), tasks, 4)  "
        "# sketchlint: disable=SL011 — workers ignore the RNG\n"
    )
    assert "SL011" not in codes(source)


# --------------------------------------------------------------------- #
# Engine behaviour
# --------------------------------------------------------------------- #


def test_per_line_suppression():
    source = "x = random.random()  # sketchlint: disable=SL001\n"
    assert "SL001" not in codes(source)
    source_all = "x = random.random()  # sketchlint: disable=all\n"
    assert "SL001" not in codes(source_all)
    wrong_code = "x = random.random()  # sketchlint: disable=SL002\n"
    assert "SL001" in codes(wrong_code)


def test_select_restricts_rules():
    source = "import math\nx = random.random()\n"
    assert codes(source, select=["SL001"]) == {"SL001"}


def test_unknown_select_is_operational_error():
    out, err = StringIO(), StringIO()
    status = run_lint(["src"], select=["SL999"], out=out, err=err)
    assert status == 2
    assert "SL999" in err.getvalue()


def test_lint_paths_reports_syntax_errors(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n")
    findings, errors = lint_paths([tmp_path])
    assert findings == []
    assert len(errors) == 1 and "syntax error" in errors[0]


def test_run_lint_text_and_json(tmp_path):
    module = tmp_path / "src" / "repro" / "core" / "m.py"
    module.parent.mkdir(parents=True)
    module.write_text("from __future__ import annotations\nassert True\n")
    out = StringIO()
    status = run_lint([tmp_path], fmt="json", out=out, err=StringIO())
    assert status == 1
    payload = json.loads(out.getvalue())
    assert payload["count"] == 1
    assert payload["findings"][0]["code"] == "SL005"
    out = StringIO()
    status = run_lint(
        [tmp_path], fmt="text", warn_only=True, out=out, err=StringIO()
    )
    assert status == 0
    assert "SL005" in out.getvalue()


def test_rule_table_is_complete():
    assert sorted(RULES) == [f"SL00{i}" for i in range(1, 10)] + [
        "SL010",
        "SL011",
    ]
    for cls in RULES.values():
        assert cls.summary and cls.rationale


def test_src_tree_is_self_clean():
    src = Path(__file__).resolve().parent.parent / "src"
    if not src.is_dir():  # pragma: no cover - sdist layouts
        pytest.skip("src tree not present")
    findings, errors = lint_paths([src])
    assert errors == []
    assert [finding.format() for finding in findings] == []


def test_cli_lint_subcommand(capsys):
    from repro.cli import main

    assert main(["lint", "--list-rules"]) == 0
    captured = capsys.readouterr()
    assert "SL001" in captured.out
