"""Rule-by-rule tests of the sketchlint static analyzer.

Every SLxxx rule gets at least one fixture that triggers it and one that
passes clean, plus engine-level tests (suppression, scoping, selection,
output formats, exit codes, self-check on ``src/``).
"""

import json
import textwrap
from io import StringIO
from pathlib import Path

import pytest

from repro.analysis import PROJECT_RULES, RULES, analyze_paths, lint_source
from repro.analysis.sketchlint import lint_paths, run_lint

SRC_PATH = "src/repro/core/module.py"  # in-scope for every rule


def codes(source, path=SRC_PATH, select=None):
    """Lint a snippet and return the set of rule codes found."""
    return {
        finding.code
        for finding in lint_source(textwrap.dedent(source), path, select=select)
    }


def tree_codes(tmp_path, files):
    """Write ``{relpath: source}`` under ``tmp_path`` and lint the tree."""
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    findings, errors = lint_paths([tmp_path])
    assert errors == []
    return {finding.code for finding in findings}


# --------------------------------------------------------------------- #
# SL001 — unseeded / module-global RNG
# --------------------------------------------------------------------- #


def test_sl001_flags_module_global_random():
    assert "SL001" in codes(
        """
        import random
        x = random.random()
        """
    )


def test_sl001_flags_unseeded_constructors():
    assert "SL001" in codes("rng = Random()\n")
    assert "SL001" in codes("rng = np.random.default_rng()\n")
    assert "SL001" in codes("x = np.random.rand(5)\n")


def test_sl001_passes_seeded_rng():
    assert "SL001" not in codes(
        """
        from random import Random
        rng = Random(7)
        value = rng.random()
        generator = np.random.default_rng(seed)
        """
    )


def test_sl001_exempts_stream_generators():
    source = "x = random.random()\n"
    assert "SL001" not in codes(source, path="src/repro/streams/generators.py")
    assert "SL001" in codes(source, path="src/repro/streams/other.py")


# --------------------------------------------------------------------- #
# SL002 — float equality
# --------------------------------------------------------------------- #


def test_sl002_flags_float_equality():
    assert "SL002" in codes("ok = slope == 0.5\n")
    assert "SL002" in codes("ok = float(a) != b\n")
    assert "SL002" in codes("ok = (a / b) == c\n")


def test_sl002_passes_integer_equality_and_tolerance():
    assert "SL002" not in codes("ok = count == 0\n")
    assert "SL002" not in codes("ok = abs(a - b) < 1e-9\n")


# --------------------------------------------------------------------- #
# SL003 — mutable defaults
# --------------------------------------------------------------------- #


def test_sl003_flags_mutable_default():
    assert "SL003" in codes("def f(xs=[]):\n    return xs\n")
    assert "SL003" in codes("def f(*, m=dict()):\n    return m\n")


def test_sl003_passes_none_default():
    assert "SL003" not in codes(
        """
        def f(xs=None):
            return [] if xs is None else xs
        """
    )


# --------------------------------------------------------------------- #
# SL004 — broad except
# --------------------------------------------------------------------- #


def test_sl004_flags_bare_and_broad_except():
    assert "SL004" in codes(
        """
        try:
            work()
        except:
            pass
        """
    )
    assert "SL004" in codes(
        """
        try:
            work()
        except Exception:
            cleanup()
        """
    )


def test_sl004_passes_narrow_or_reraising_handlers():
    assert "SL004" not in codes(
        """
        try:
            work()
        except ValueError:
            cleanup()
        """
    )
    assert "SL004" not in codes(
        """
        try:
            work()
        except Exception:
            cleanup()
            raise
        """
    )


# --------------------------------------------------------------------- #
# SL005 — assert in library code
# --------------------------------------------------------------------- #


def test_sl005_flags_assert_under_src():
    assert "SL005" in codes("assert delta > 0\n")


def test_sl005_ignores_tests_and_benchmarks():
    assert "SL005" not in codes(
        "assert delta > 0\n", path="benchmarks/bench_fig1.py"
    )
    assert "SL005" not in codes("assert delta > 0\n", path="tests/test_x.py")


# --------------------------------------------------------------------- #
# SL006 — future annotations import
# --------------------------------------------------------------------- #


def test_sl006_flags_missing_future_import():
    assert "SL006" in codes("import math\n")


def test_sl006_passes_with_future_import_or_empty_module():
    assert "SL006" not in codes(
        "from __future__ import annotations\nimport math\n"
    )
    assert "SL006" not in codes("")


# --------------------------------------------------------------------- #
# SL007 — untyped public API
# --------------------------------------------------------------------- #


def test_sl007_flags_untyped_public_method():
    source = """
        class Sketch:
            def point(self, item, s=0):
                return 0
    """
    assert "SL007" in codes(source)


def test_sl007_passes_annotated_and_out_of_scope():
    annotated = """
        class Sketch:
            def point(self, item: int, s: float = 0) -> float:
                return 0.0

            def _internal(self, anything):
                return anything
    """
    assert "SL007" not in codes(annotated)
    untyped = """
        class Helper:
            def render(self, chart):
                return chart
    """
    assert "SL007" not in codes(untyped, path="src/repro/eval/module.py")


# --------------------------------------------------------------------- #
# SL008 — unguarded timestamp ingest (superseded by SL014; --select only)
# --------------------------------------------------------------------- #


def test_sl008_flags_unguarded_feed_when_selected():
    assert "SL008" in codes(
        """
        class Tracker:
            def feed(self, t, value):
                self.value = value
        """,
        select=["SL008"],
    )


def test_sl008_passes_guarded_or_contracted_feed():
    guarded = """
        class Tracker:
            def feed(self, t, value):
                if t <= self.last:
                    raise ValueError("time went backwards")
                self.value = value
    """
    assert "SL008" not in codes(guarded, select=["SL008"])
    contracted = """
        class Tracker:
            @contracts.monotone_timestamps(param="t")
            def feed(self, t, value):
                self.value = value
    """
    assert "SL008" not in codes(contracted, select=["SL008"])


def test_sl008_superseded_by_sl014_in_default_runs():
    unguarded = """
        class Tracker:
            def feed(self, t, value):
                self.value = value
    """
    found = codes(unguarded)
    assert "SL008" not in found  # the whole-program rule replaced it
    assert "SL014" in found
    assert RULES["SL008"].superseded_by == "SL014"


# --------------------------------------------------------------------- #
# SL009 — non-atomic writes in durability-critical packages
# --------------------------------------------------------------------- #


def test_sl009_flags_direct_writes_in_durable_scopes():
    source = 'path.write_text("data")\n'
    for scope in ("store", "io", "runtime"):
        assert "SL009" in codes(source, path=f"src/repro/{scope}/module.py")
    assert "SL009" in codes(
        'path.write_bytes(b"data")\n', path="src/repro/store/store.py"
    )


def test_sl009_ignores_other_packages_and_tests():
    source = 'path.write_text("data")\n'
    assert "SL009" not in codes(source, path="src/repro/core/module.py")
    assert "SL009" not in codes(source, path="tests/test_store.py")


def test_sl009_suppression():
    source = (
        'path.write_text("x")  # sketchlint: disable=SL009 — staging file\n'
    )
    assert "SL009" not in codes(source, path="src/repro/io/module.py")


def test_sl009_passes_atomic_helpers():
    source = """
        from repro.io.atomic import atomic_write_text
        atomic_write_text(path, "data")
    """
    assert "SL009" not in codes(source, path="src/repro/runtime/module.py")


# --------------------------------------------------------------------- #
# SL010 — per-record scalar loops on hot paths
# --------------------------------------------------------------------- #


def test_sl010_flags_zip_loop_over_stream_columns():
    source = """
        for t, i, c in zip(stream.times, stream.items, stream.counts):
            sketch.update(i, c, t)
    """
    assert "SL010" in codes(source)
    tolist = """
        for t, i in zip(times.tolist(), items.tolist()):
            handle(t, i)
    """
    assert "SL010" in codes(tolist, path="src/repro/sketch/module.py")


def test_sl010_flags_enumerated_zip_and_scalar_hashing_in_loops():
    enumerated = """
        for idx, (t, i) in enumerate(zip(times, items)):
            handle(idx, t, i)
    """
    assert "SL010" in codes(enumerated)
    hashing = """
        for row, col in enumerate(self.hashes.buckets(item)):
            counters[row][col] += count
    """
    assert "SL010" in codes(hashing)
    signs = """
        while pending:
            sgns = self.signs.signs(pending.pop())
    """
    assert "SL010" in codes(signs)


def test_sl010_passes_vectorized_and_unrelated_loops():
    assert "SL010" not in codes(
        """
        columns = self.hashes.buckets_many(items)
        for row in range(self.depth):
            np.add.at(self.counters[row], columns[row], counts)
        """
    )
    assert "SL010" not in codes("cols = self.hashes.buckets(item)\n")
    assert "SL010" not in codes(
        """
        for a, b in zip(starts, ends):
            handle(a, b)
        """
    )


def test_sl010_scoped_to_core_and_sketch():
    source = """
        for t, i, c in zip(stream.times, stream.items, stream.counts):
            sketch.update(i, c, t)
    """
    assert "SL010" not in codes(source, path="src/repro/streams/model.py")
    assert "SL010" not in codes(source, path="benchmarks/bench_x.py")
    assert "SL010" not in codes(source, path="tests/test_core.py")


def test_sl010_suppression_for_scalar_references():
    source = (
        "for t, i in zip(times, items):  "
        "# sketchlint: disable=SL010 — scalar reference\n"
        "    feed(t, i)\n"
    )
    assert "SL010" not in codes(source)


# --------------------------------------------------------------------- #
# SL011 — RNG shared across fork/pool dispatch
# --------------------------------------------------------------------- #


def test_sl011_flags_rng_near_pool_submit():
    source = """
        def dispatch(self, times, items, counts, pool):
            draws = self._rng.random(len(times))
            pool.feed([(times, items, counts)] * pool.nworkers)
    """
    assert "SL011" in codes(source)


def test_sl011_flags_rng_captured_by_fork_launcher():
    source = """
        def launch(self, tasks):
            rng = self._rng
            return parallel_map(lambda t: rng.random(), tasks, 4)
    """
    assert "SL011" in codes(source)


def test_sl011_passes_predrawn_and_spawned_generators():
    predrawn = """
        def dispatch(self, times, pool):
            uniforms = bulk_uniforms(self._rng, len(times))
            pool.feed([(uniforms, times)] * pool.nworkers)
    """
    assert "SL011" not in codes(predrawn)
    spawned = """
        def launch(self, tasks):
            children = self._rng.spawn(4)
            return parallel_map(run, list(zip(children, tasks)), 4)
    """
    assert "SL011" not in codes(spawned)


def test_sl011_passes_rng_free_dispatch_and_non_pool_feed():
    assert "SL011" not in codes(
        """
        def launch(tasks):
            return parallel_map(compute, tasks, 4)
        """
    )
    # tracker.feed is a tracker primitive, not a pool submission.
    assert "SL011" not in codes(
        """
        def apply(self, tracker, times):
            values = self._rng.random(len(times))
            tracker.feed(times, values)
        """
    )


def test_sl011_suppression_for_deliberate_broadcast():
    source = (
        "def launch(self, tasks):\n"
        "    rng = self._rng\n"
        "    return parallel_map(lambda t: rng.bit_count(), tasks, 4)  "
        "# sketchlint: disable=SL011 — workers ignore the RNG\n"
    )
    assert "SL011" not in codes(source)


# --------------------------------------------------------------------- #
# SL012 — durability escape (interprocedural)
# --------------------------------------------------------------------- #

STORE_PATH = "src/repro/store/module.py"


def test_sl012_flags_raw_write_open_in_durability_scope():
    source = """
        def save(path, data):
            with open(path, "w") as handle:
                handle.write(data)
    """
    found = codes(source, path=STORE_PATH)
    assert "SL012" in found
    assert "SL009" not in found  # raw open is invisible to the module rule


def test_sl012_flags_wrapped_write_one_call_deep():
    source = """
        def checkpoint(path, payload):
            _spill(path, payload)

        def _spill(path, payload):
            with open(path, "wb") as handle:
                handle.write(payload)
    """
    assert "SL012" in codes(source, path="src/repro/runtime/module.py")


def test_sl012_passes_read_open_and_atomic_helpers():
    assert "SL012" not in codes(
        """
        def load(path):
            with open(path, "r", encoding="utf-8") as handle:
                return handle.read()
        """,
        path=STORE_PATH,
    )
    assert "SL012" not in codes(
        """
        def save(path, data):
            atomic_write_text(path, data)
        """,
        path=STORE_PATH,
    )


def test_sl012_exempts_the_atomic_module_itself():
    source = """
        def atomic_write_text(path, data):
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(data)
    """
    assert "SL012" not in codes(source, path="src/repro/io/atomic.py")


def test_sl012_ignores_non_durability_packages():
    source = """
        def save(path, data):
            with open(path, "w") as handle:
                handle.write(data)
    """
    assert "SL012" not in codes(source, path="src/repro/eval/module.py")


def test_sl012_suppression():
    source = (
        "def save(path, data):\n"
        '    with open(path, "a") as handle:  '
        "# sketchlint: disable=SL012 — fsync'd append log\n"
        "        handle.write(data)\n"
    )
    assert "SL012" not in codes(source, path=STORE_PATH)


def test_sl012_regression_cross_module_wrapper_defeats_sl009(tmp_path):
    """A write helper outside store/ is invisible to SL009 but SL012
    follows the call edge from the durability entry point into it."""
    found = tree_codes(
        tmp_path,
        {
            "src/repro/store/checkpoint.py": """
                from __future__ import annotations

                from repro.util.spill import spill_text

                def checkpoint(path, payload):
                    spill_text(path, payload)
            """,
            "src/repro/util/spill.py": """
                from __future__ import annotations

                def spill_text(path, payload):
                    path.write_text(payload)
            """,
        },
    )
    assert "SL012" in found
    assert "SL009" not in found


# --------------------------------------------------------------------- #
# SL013 — fork-shared mutable state (interprocedural)
# --------------------------------------------------------------------- #


def test_sl013_flags_worker_mutating_module_global():
    source = """
        _CACHE = {}

        def _worker(task):
            _CACHE[task] = 1
            return task

        def launch(tasks):
            return parallel_map(_worker, tasks, 4)
    """
    assert "SL013" in codes(source)


def test_sl013_flags_mutation_one_call_deep():
    source = """
        _CACHE = {}

        def _remember(task):
            _CACHE[task] = 1

        def _worker(task):
            _remember(task)
            return task

        def launch(tasks):
            return parallel_map(_worker, tasks, 4)
    """
    found = codes(source)
    assert "SL013" in found
    assert "SL011" not in found  # no RNG: the old rule has nothing to say


def test_sl013_flags_bound_method_mutating_instance_state():
    source = """
        class Ingest:
            def _work(self, task):
                self.seen.append(task)
                return task

            def launch(self, tasks):
                return parallel_map(self._work, tasks, 4)
    """
    assert "SL013" in codes(source)


def test_sl013_flags_worker_reading_mutable_global():
    source = """
        _REGISTRY = {}

        def _worker(task):
            return _REGISTRY[task]

        def launch(tasks):
            return parallel_map(_worker, tasks, 4)
    """
    assert "SL013" in codes(source)


def test_sl013_passes_pure_and_immutable_global_workers():
    assert "SL013" not in codes(
        """
        def _worker(task):
            return task * 2

        def launch(tasks):
            return parallel_map(_worker, tasks, 4)
        """
    )
    assert "SL013" not in codes(
        """
        _SCALE = 3

        def _worker(task):
            return task * _SCALE

        def launch(tasks):
            return parallel_map(_worker, tasks, 4)
        """
    )


def test_sl013_passes_shipped_constructor():
    # The instance is built inside the child; its __init__ self-writes
    # initialize post-fork state, not shared state.
    assert "SL013" not in codes(
        """
        class Snapshot:
            def __init__(self, source):
                self.data = dict(source)

        def freeze_all(sources):
            return parallel_map(Snapshot, sources, 4)
        """
    )


def test_sl013_suppression_for_designed_cow_ownership():
    source = (
        "class Ingest:\n"
        "    def _work(self, task):\n"
        "        self.seen.append(task)\n"
        "        return task\n"
        "\n"
        "    def launch(self, tasks):\n"
        "        return parallel_map(self._work, tasks, 4)  "
        "# sketchlint: disable=SL013 — per-shard CoW ownership, merged on collect\n"
    )
    assert "SL013" not in codes(source)


def test_sl013_regression_wrapper_defeats_syntactic_rules(tmp_path):
    """A worker imported from another module mutates a global there;
    per-module scans of either file alone see no hazard."""
    found = tree_codes(
        tmp_path,
        {
            "src/repro/parallel/dispatch.py": """
                from __future__ import annotations

                from repro.parallel.jobs import work

                def launch(tasks):
                    return parallel_map(work, tasks, 4)
            """,
            "src/repro/parallel/jobs.py": """
                from __future__ import annotations

                _SEEN = []

                def work(task):
                    _SEEN.append(task)
                    return task
            """,
        },
    )
    assert "SL013" in found
    assert "SL011" not in found


# --------------------------------------------------------------------- #
# SL014 — contract-coverage gap (interprocedural)
# --------------------------------------------------------------------- #


def test_sl014_flags_unguarded_public_ingest():
    assert "SL014" in codes(
        """
        class Tracker:
            def feed(self, t, value):
                self.value = value
        """
    )


def test_sl014_passes_locally_guarded_ingest():
    assert "SL014" not in codes(
        """
        class Tracker:
            def feed(self, t, value):
                if t <= self.last:
                    raise ValueError("time went backwards")
                self.value = value
        """
    )
    assert "SL014" not in codes(
        """
        class Tracker:
            @contracts.monotone_timestamps(param="t")
            def feed(self, t, value):
                self.value = value
        """
    )


def test_sl014_passes_facade_delegating_to_guarded_tracker():
    """The wrapper-indirection case SL008 over-reports: an unguarded
    facade whose call path ends in a guarded ingest function is safe."""
    source = """
        class Inner:
            def feed(self, t, value):
                if t <= self.last:
                    raise ValueError("time went backwards")
                self.value = value

        class Facade:
            def __init__(self):
                self._inner = Inner()

            def feed(self, t, value):
                self._inner.feed(t, value)
    """
    found = codes(source)
    assert "SL014" not in found
    # ...while the superseded per-function rule still flags the facade.
    assert "SL008" in codes(source, select=["SL008"])


def test_sl014_flags_private_ingest_exposed_by_public_wrapper():
    """The wrapper-indirection case SL008 under-reports: the unguarded
    worker is only dangerous because a public route reaches it."""
    assert "SL014" in codes(
        """
        class _Worker:
            def feed(self, t, value):
                self.value = value

        class Facade:
            def __init__(self):
                self._worker = _Worker()

            def accept(self, t, value):
                self._worker.feed(t, value)
        """
    )


def test_sl014_passes_private_ingest_behind_guarded_route():
    assert "SL014" not in codes(
        """
        class _Worker:
            def feed(self, t, value):
                self.value = value

        class Facade:
            def __init__(self):
                self._worker = _Worker()

            @contracts.monotone_timestamps(param="t")
            def accept(self, t, value):
                self._worker.feed(t, value)
        """
    )


def test_sl014_suppression():
    source = (
        "class Tracker:\n"
        "    def feed(self, t, value):  "
        "# sketchlint: disable=SL014 — clock owned by the delegate\n"
        "        self.value = value\n"
    )
    assert "SL014" not in codes(source)


# --------------------------------------------------------------------- #
# SL015 — unpropagated RNG state (interprocedural)
# --------------------------------------------------------------------- #


def test_sl015_flags_rng_consumed_one_call_deep_in_worker():
    source = """
        def _helper(state):
            return state.rng.random()

        def _task(state):
            return _helper(state)

        def launch(tasks):
            return parallel_map(_task, tasks, 4)
    """
    found = codes(source)
    assert "SL015" in found
    assert "SL011" not in found  # dispatcher never says "rng" lexically


def test_sl015_passes_spawned_per_worker_generators():
    assert "SL015" not in codes(
        """
        def _helper(child):
            return child.random()

        def _task(pair):
            return _helper(pair[0])

        def launch(tasks, master):
            children = master.spawn(len(tasks))
            return parallel_map(_task, list(zip(children, tasks)), 4)
        """
    )


def test_sl015_passes_state_transplant_assignment():
    assert "SL015" not in codes(
        """
        def _task(state):
            return state.rng.random()

        def _merge(master, results):
            master.rng = results[0]

        def launch(tasks, master):
            out = parallel_map(_task, tasks, 4)
            _merge(master, out)
            return out
        """
    )


def test_sl015_passes_rng_free_workers():
    assert "SL015" not in codes(
        """
        def _task(x):
            return x * 2

        def launch(tasks):
            return parallel_map(_task, tasks, 4)
        """
    )


def test_sl015_leaves_lexical_rng_dispatch_to_sl011():
    # The dispatcher itself touches the RNG: SL011's verdict applies and
    # SL015 stays silent (mitigated dispatches must not double-report).
    source = """
        def launch(self, tasks):
            rng = self._rng
            return parallel_map(lambda t: rng.random(), tasks, 4)
    """
    found = codes(source)
    assert "SL011" in found
    assert "SL015" not in found


def test_sl015_suppression():
    source = (
        "def _helper(state):\n"
        "    return state.rng.random()\n"
        "\n"
        "def _task(state):\n"
        "    return _helper(state)\n"
        "\n"
        "def launch(tasks):\n"
        "    return parallel_map(_task, tasks, 4)  "
        "# sketchlint: disable=SL015 — workers share one deliberate stream\n"
    )
    assert "SL015" not in codes(source)


# --------------------------------------------------------------------- #
# SL016 — swallowed durability error (interprocedural)
# --------------------------------------------------------------------- #


def test_sl016_flags_swallowed_oserror_in_durability_scope():
    source = """
        def append(path, frame):
            try:
                _write(path, frame)
            except OSError:
                pass
    """
    found = codes(source, path="src/repro/runtime/module.py")
    assert "SL016" in found
    assert "SL004" not in found  # OSError is narrow; only SL016 sees it


def test_sl016_flags_swallow_one_call_deep(tmp_path):
    """The swallow lives outside runtime/ but is reached from it."""
    found = tree_codes(
        tmp_path,
        {
            "src/repro/runtime/flush.py": """
                from __future__ import annotations

                from repro.util.writer import best_effort_write

                def flush(path, frames):
                    for frame in frames:
                        best_effort_write(path, frame)
            """,
            "src/repro/util/writer.py": """
                from __future__ import annotations

                def best_effort_write(path, frame):
                    try:
                        frame_bytes = bytes(frame)
                        path.write_bytes(frame_bytes)
                    except OSError:
                        return None
            """,
        },
    )
    assert "SL016" in found


def test_sl016_passes_reraise_degrade_and_retry_idioms():
    assert "SL016" not in codes(
        """
        def append(path, frame):
            try:
                _write(path, frame)
            except OSError as exc:
                raise DegradedError("wal-io-error", str(exc)) from exc
        """,
        path="src/repro/runtime/module.py",
    )
    assert "SL016" not in codes(
        """
        def checkpoint(self, state):
            try:
                _snapshot(state)
            except OSError as exc:
                self.monitor.degrade("disk-full", str(exc))
        """,
        path="src/repro/runtime/module.py",
    )
    assert "SL016" not in codes(
        """
        def run_with_retry(action, attempts):
            last = None
            for _ in range(attempts):
                try:
                    return action()
                except OSError as exc:
                    last = exc
            raise SnapshotRetryError("exhausted") from last
        """,
        path="src/repro/runtime/module.py",
    )


def test_sl016_exempts_atomic_module_and_other_packages():
    source = """
        def _cleanup(tmp):
            try:
                tmp.unlink()
            except OSError:
                pass
    """
    assert "SL016" not in codes(source, path="src/repro/io/atomic.py")
    assert "SL016" not in codes(source, path="src/repro/eval/module.py")


def test_sl016_suppression():
    source = (
        "def append(path, frame):\n"
        "    try:\n"
        "        _write(path, frame)\n"
        "    except OSError:  "
        "# sketchlint: disable=SL016 — probe write, caller re-checks\n"
        "        pass\n"
    )
    assert "SL016" not in codes(source, path="src/repro/runtime/module.py")


# --------------------------------------------------------------------- #
# SL017 — unpaired memory mapping (interprocedural)
# --------------------------------------------------------------------- #


def test_sl017_flags_never_closed_mapping():
    source = """
        from multiprocessing.shared_memory import SharedMemory

        def publish(payload):
            segment = SharedMemory(create=True, size=len(payload))
            segment.buf[:] = payload
            return segment.name
    """
    assert "SL017" in codes(source)


def test_sl017_flags_straight_line_close():
    """A close an exception can skip is not lifecycle management."""
    source = """
        from multiprocessing.shared_memory import SharedMemory

        def probe():
            segment = SharedMemory(create=True, size=16)
            segment.buf[0] = 1
            segment.close()
            segment.unlink()
    """
    assert "SL017" in codes(source)


def test_sl017_flags_project_subclass_of_shared_memory():
    source = """
        from multiprocessing.shared_memory import SharedMemory

        class Quiet(SharedMemory):
            def __del__(self):
                pass

        def leak():
            segment = Quiet(create=True, size=16)
            return segment.buf[0]
    """
    assert "SL017" in codes(source)


def test_sl017_passes_finally_with_and_error_path_pairs():
    assert "SL017" not in codes(
        """
        from multiprocessing.shared_memory import SharedMemory

        def probe():
            segment = SharedMemory(create=True, size=16)
            try:
                segment.buf[0] = 1
            finally:
                segment.close()
                segment.unlink()
        """
    )
    assert "SL017" not in codes(
        """
        import mmap

        def scan(fileno, length):
            with mmap.mmap(fileno, length) as view:
                return view[:8]
        """
    )
    assert "SL017" not in codes(
        """
        from multiprocessing.shared_memory import SharedMemory

        def publish(payload):
            segment = SharedMemory(create=True, size=len(payload))
            try:
                segment.buf[: len(payload)] = payload
            except Exception:
                segment.close()
                segment.unlink()
                raise
            segment.close()
            return segment.name
        """
    )


def test_sl017_attribute_store_needs_class_cleanup():
    flagged = """
        from multiprocessing.shared_memory import SharedMemory

        class Holder:
            def __init__(self, size):
                self._shm = SharedMemory(create=True, size=size)
    """
    assert "SL017" in codes(flagged)
    clean = flagged + """
            def close(self):
                self._shm.close()
    """
    assert "SL017" not in codes(clean)


def test_sl017_delegation_checks_resolved_callee():
    flagged = """
        from multiprocessing.shared_memory import SharedMemory

        def _fill(segment, payload):
            segment.buf[: len(payload)] = payload

        def publish(payload):
            segment = SharedMemory(create=True, size=len(payload))
            _fill(segment, payload)
    """
    assert "SL017" in codes(flagged)
    clean = """
        from multiprocessing.shared_memory import SharedMemory

        def _consume(segment, payload):
            try:
                segment.buf[: len(payload)] = payload
            finally:
                segment.close()

        def publish(payload):
            segment = SharedMemory(create=True, size=len(payload))
            _consume(segment, payload)
    """
    assert "SL017" not in codes(clean)


def test_sl017_suppression():
    source = (
        "from multiprocessing.shared_memory import SharedMemory\n"
        "\n"
        "def pin():\n"
        "    segment = SharedMemory(create=True, size=16)  "
        "# sketchlint: disable=SL017 — deliberately pinned until exit\n"
        "    return segment.buf[0]\n"
    )
    assert "SL017" not in codes(source)


# --------------------------------------------------------------------- #
# SL018 — buffer-tier bypass (interprocedural)
# --------------------------------------------------------------------- #


def test_sl018_flags_direct_below_buffer_feed():
    assert "SL018" in codes(
        """
        class Loader:
            def bulk_load(self, sketch, times, items, counts):
                sketch._ingest_batch(times, items, counts)
        """
    )


def test_sl018_passes_buffered_entry_points():
    assert "SL018" not in codes(
        """
        class Loader:
            def bulk_load(self, sketch, times, items, counts):
                sketch.ingest_batch(times, items, counts)
        """
    )


def test_sl018_exempts_the_dispatch_module():
    # repro.core.base owns the buffer: its own dispatch into the
    # below-buffer verbs is the mechanism, not a bypass.
    assert "SL018" not in codes(
        """
        class PersistentSketch:
            def ingest_batch(self, times, items, counts):
                self._ingest_batch(times, items, counts)
        """,
        path="src/repro/core/base.py",
    )


def test_sl018_flags_unflushed_history_read():
    assert "SL018" in codes(
        """
        class PersistentSketch:
            pass

        class MySketch(PersistentSketch):
            def point(self, item, t):
                tracker = self._trackers.get(item)
                return tracker.value_at(t)
        """
    )


def test_sl018_passes_flushed_history_read():
    assert "SL018" not in codes(
        """
        class PersistentSketch:
            pass

        class MySketch(PersistentSketch):
            def _ensure_synced(self):
                self.flush_buffer()

            def point(self, item, t):
                self._ensure_synced()
                tracker = self._trackers.get(item)
                return tracker.value_at(t)
        """
    )


def test_sl018_flush_may_sit_anywhere_on_the_path():
    # The flush lives in a delegate the query resolves into, not in the
    # public method itself — the whole-path property SL018 checks.
    assert "SL018" not in codes(
        """
        class PersistentSketch:
            pass

        class MySketch(PersistentSketch):
            def _counter_at(self, item, t):
                self.detach_workers()
                return self._trackers[item].value_at(t)

            def point(self, item, t):
                return self._counter_at(item, t)
        """
    )


def test_sl018_ignores_non_sketch_classes():
    # Trackers and frozen views read history by design; only the
    # PersistentSketch hierarchy carries the buffer-flush contract.
    assert "SL018" not in codes(
        """
        class PLATracker:
            def value_at(self, t):
                return self._pla.value_at(t)
        """
    )


def test_sl018_regression_bypass_hidden_in_helper_module(tmp_path):
    """A helper module feeding the below-buffer verb is invisible to
    per-module scans of the sketch file alone."""
    found = tree_codes(
        tmp_path,
        {
            "src/repro/core/fastpath.py": """
                from __future__ import annotations

                def turbo_load(sketch, times, items, counts):
                    sketch._ingest_batch(times, items, counts)
            """,
        },
    )
    assert "SL018" in found


def test_sl018_suppression():
    source = (
        "class Replayer:\n"
        "    def replay(self, sketch, times, items, counts):\n"
        "        sketch._ingest_batch(times, items, counts)  "
        "# sketchlint: disable=SL018 — recovery replay runs below the buffer by design\n"
    )
    assert "SL018" not in codes(source)


# --------------------------------------------------------------------- #
# Engine behaviour
# --------------------------------------------------------------------- #


def test_per_line_suppression():
    source = "x = random.random()  # sketchlint: disable=SL001\n"
    assert "SL001" not in codes(source)
    source_all = "x = random.random()  # sketchlint: disable=all\n"
    assert "SL001" not in codes(source_all)
    wrong_code = "x = random.random()  # sketchlint: disable=SL002\n"
    assert "SL001" in codes(wrong_code)


def test_select_restricts_rules():
    source = "import math\nx = random.random()\n"
    assert codes(source, select=["SL001"]) == {"SL001"}


def test_unknown_select_is_operational_error():
    out, err = StringIO(), StringIO()
    status = run_lint(["src"], select=["SL999"], out=out, err=err)
    assert status == 2
    assert "SL999" in err.getvalue()


def test_lint_paths_reports_syntax_errors(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n")
    findings, errors = lint_paths([tmp_path])
    assert findings == []
    assert len(errors) == 1 and "syntax error" in errors[0]


def test_run_lint_text_and_json(tmp_path):
    module = tmp_path / "src" / "repro" / "core" / "m.py"
    module.parent.mkdir(parents=True)
    module.write_text("from __future__ import annotations\nassert True\n")
    out = StringIO()
    status = run_lint([tmp_path], fmt="json", out=out, err=StringIO())
    assert status == 1
    payload = json.loads(out.getvalue())
    assert payload["count"] == 1
    assert payload["findings"][0]["code"] == "SL005"
    out = StringIO()
    status = run_lint(
        [tmp_path], fmt="text", warn_only=True, out=out, err=StringIO()
    )
    assert status == 0
    assert "SL005" in out.getvalue()


def test_rule_table_is_complete():
    assert sorted(RULES) == [f"SL00{i}" for i in range(1, 10)] + [
        "SL010",
        "SL011",
    ]
    assert sorted(PROJECT_RULES) == [
        "SL012",
        "SL013",
        "SL014",
        "SL015",
        "SL016",
        "SL017",
        "SL018",
    ]
    for cls in (*RULES.values(), *PROJECT_RULES.values()):
        assert cls.summary and cls.rationale


def test_sarif_output(tmp_path):
    module = tmp_path / "src" / "repro" / "core" / "m.py"
    module.parent.mkdir(parents=True)
    module.write_text("from __future__ import annotations\nassert True\n")
    out = StringIO()
    status = run_lint([tmp_path], fmt="sarif", out=out, err=StringIO())
    assert status == 1
    sarif = json.loads(out.getvalue())
    assert sarif["version"] == "2.1.0"
    run = sarif["runs"][0]
    assert run["tool"]["driver"]["name"] == "sketchlint"
    rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert {"SL001", "SL012", "SL015"} <= rule_ids
    results = run["results"]
    assert results[0]["ruleId"] == "SL005"
    location = results[0]["locations"][0]["physicalLocation"]
    assert location["region"]["startLine"] == 2


def test_baseline_ratchet(tmp_path):
    module = tmp_path / "tree" / "m.py"
    module.parent.mkdir(parents=True)
    module.write_text("import math\n")  # SL006
    baseline = tmp_path / "baseline.json"
    # Record the current findings as the accepted debt.
    status = run_lint(
        [module.parent],
        baseline=baseline,
        update_baseline=True,
        out=StringIO(),
        err=StringIO(),
    )
    assert status == 0
    # Unchanged tree: the known finding is held, gate passes.
    out = StringIO()
    status = run_lint(
        [module.parent], baseline=baseline, out=out, err=StringIO()
    )
    assert status == 0
    assert "known finding" in out.getvalue()
    # A new finding in another file trips the ratchet.
    (module.parent / "n.py").write_text("import math\n")
    out = StringIO()
    status = run_lint(
        [module.parent], baseline=baseline, out=out, err=StringIO()
    )
    assert status == 1
    assert "n.py" in out.getvalue()
    assert "m.py:1" not in out.getvalue()  # old debt stays suppressed


def test_update_baseline_requires_baseline_path():
    err = StringIO()
    status = run_lint(
        ["src"], update_baseline=True, out=StringIO(), err=err
    )
    assert status == 2
    assert "--baseline" in err.getvalue()


def test_stats_output(tmp_path):
    module = tmp_path / "m.py"
    module.write_text(
        "from __future__ import annotations\n\n\ndef f() -> int:\n"
        "    return g()\n\n\ndef g() -> int:\n    return 1\n"
    )
    out = StringIO()
    status = run_lint([tmp_path], stats=True, out=out, err=StringIO())
    assert status == 0
    text = out.getvalue()
    assert "sketchlint stats:" in text
    assert "call graph" in text
    assert "wall time" in text


def test_time_budget_is_operational_error():
    err = StringIO()
    status = run_lint(
        ["src"], time_budget=1e-9, out=StringIO(), err=err
    )
    assert status == 2
    assert "time budget" in err.getvalue()


def test_parse_cache_round_trip(tmp_path):
    module = tmp_path / "tree" / "m.py"
    module.parent.mkdir(parents=True)
    module.write_text("from __future__ import annotations\nx = 1\n")
    cache = tmp_path / "cache"
    first = analyze_paths([module.parent], cache_dir=cache)
    assert first[2].cache_hits == 0
    second = analyze_paths([module.parent], cache_dir=cache)
    assert second[2].cache_hits == 1
    assert [f.format() for f in first[0]] == [f.format() for f in second[0]]
    # A content change invalidates the entry, results stay correct.
    module.write_text("import math\n")
    third = analyze_paths([module.parent], cache_dir=cache)
    assert third[2].cache_hits == 0
    assert {f.code for f in third[0]} == {"SL006"}


def test_src_tree_is_self_clean():
    src = Path(__file__).resolve().parent.parent / "src"
    if not src.is_dir():  # pragma: no cover - sdist layouts
        pytest.skip("src tree not present")
    findings, errors = lint_paths([src])
    assert errors == []
    assert [finding.format() for finding in findings] == []


def test_cli_lint_subcommand(capsys):
    from repro.cli import main

    assert main(["lint", "--list-rules"]) == 0
    captured = capsys.readouterr()
    assert "SL001" in captured.out
