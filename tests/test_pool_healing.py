"""WorkerPool self-healing edge cases, exercised at the pool layer.

``tests/test_parallel.py`` pins the sketch-level contract (a killed
worker heals bit-identically); this suite drives the raw
:class:`~repro.parallel.pool.WorkerPool` through the mechanisms behind
it: reply-deadline detection of hung workers, journal replay on
respawn, scripted respawn failures exhausting the budget into the
inline serial fallback, deterministic handler bugs poisoning the pool
(never retried into a wrong answer), and ``close(terminate=True)``
escalation.  Fault scripting goes through
:func:`~repro.parallel.pool.pool_faults` with a
:class:`~repro.runtime.faults.FaultPlan` — the same plan object the
chaos matrix drives end to end.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.parallel import (
    IngestError,
    WorkerPool,
    WorkerUnavailable,
    fork_available,
    parallel_map,
    pool_faults,
)
from repro.runtime import FaultPlan

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="worker pool requires os.fork"
)


class SumHandler:
    """Minimal handler: accumulates fed integers, collects the total.

    The journal-replay contract is observable through it: the collect
    total equals the sum of every payload ever fed since the last
    collect, no matter how many times the worker died in between.
    """

    def __init__(self, index=0, nworkers=0):
        self.index = index
        self.total = 0

    def feed(self, payload):
        self.total += int(payload)

    def collect(self):
        return self.total


class FlakyOnceFactory:
    """Builds handlers that fail once per marker file, then work.

    Models a transient in-worker failure: the first incarnation trips
    (leaving the marker on shared disk), the *respawned* worker re-runs
    the journal and succeeds — healing, not poisoning, is the right
    outcome.
    """

    def __init__(self, marker):
        self.marker = marker

    def __call__(self, index, nworkers):
        factory = self

        class FlakyOnce(SumHandler):
            def feed(self, payload):
                if payload == 13 and not factory.marker.exists():
                    factory.marker.write_text("tripped")
                    raise RuntimeError("transient glitch on 13")
                super().feed(payload)

        return FlakyOnce(index, nworkers)


class AlwaysRaisesHandler(SumHandler):
    """Deterministic bug: every incarnation raises on the same input."""

    def feed(self, payload):
        if payload == 13:
            raise RuntimeError("deterministic bug on 13")
        super().feed(payload)


def make_pool(**kwargs):
    kwargs.setdefault("nworkers", 2)
    kwargs.setdefault("handler_factory", SumHandler)
    kwargs.setdefault("sleep", lambda _t: None)
    return WorkerPool(kwargs.pop("nworkers"), kwargs.pop("handler_factory"), **kwargs)


def wait_for_death(pid):
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return
        time.sleep(0.01)


# --------------------------------------------------------------------- #
# Healthy-path journal semantics
# --------------------------------------------------------------------- #


def test_feed_collect_roundtrip_and_journal_lifecycle():
    pool = make_pool()
    try:
        pool.feed([1, 2])
        pool.feed([10, 20])
        assert len(pool._journal) == 2
        assert pool.collect() == [11, 22]
        # Collect ships cumulative worker state to the master, which
        # merges it — so the replay journal is safe to clear: a future
        # respawn forks a master that already holds the merged state.
        assert pool._journal == []
        pool.feed([5, 7])
        assert pool.collect() == [16, 29]
    finally:
        pool.close(terminate=True)
    assert pool.closed
    with pytest.raises(IngestError, match="closed"):
        pool.feed([0, 0])


def test_pool_requires_two_workers():
    with pytest.raises(ValueError, match="workers"):
        WorkerPool(1, SumHandler)


# --------------------------------------------------------------------- #
# Dead workers: respawn + replay
# --------------------------------------------------------------------- #


def test_killed_worker_respawns_and_replays_journal():
    pool = make_pool()
    try:
        pool.feed([1, 100])
        pool.feed([2, 200])
        victim = pool.pids[0]
        os.kill(victim, signal.SIGKILL)
        wait_for_death(victim)
        pool.feed([3, 300])  # heals: respawn + replay of both past feeds
        assert pool.respawns >= 1
        assert pool.pids[0] != victim and pool.pids[0] != 0
        assert pool.collect() == [6, 600]
    finally:
        pool.close(terminate=True)


def test_scripted_kill_via_fault_plan():
    plan = FaultPlan(pool_kill_worker=1, pool_kill_at_batch=2)
    pool = make_pool()
    try:
        with pool_faults(plan):
            pool.feed([1, 10])
            pool.feed([2, 20])  # worker 1 is SIGKILLed just before dispatch
            assert pool.respawns >= 1
        assert pool.collect() == [3, 30]
    finally:
        pool.close(terminate=True)


def test_transient_worker_error_heals_by_replay(tmp_path):
    pool = make_pool(handler_factory=FlakyOnceFactory(tmp_path / "trip"))
    try:
        pool.feed([1, 1])
        pool.feed([13, 2])  # first incarnation raises; replay succeeds
        assert pool.respawns >= 1
        assert pool.collect() == [14, 3]
    finally:
        pool.close(terminate=True)


def test_deterministic_handler_bug_poisons_pool():
    """A handler that raises again on replay is a bug, not a fault:
    the pool must surface IngestError, never silently drop the batch."""
    pool = make_pool(handler_factory=AlwaysRaisesHandler)
    try:
        pool.feed([1, 1])
        with pytest.raises(IngestError, match="deterministic bug"):
            pool.feed([13, 2])
        assert pool.closed, "a poisoned pool refuses further use"
    finally:
        pool.close(terminate=True)


# --------------------------------------------------------------------- #
# Hung workers: reply deadlines
# --------------------------------------------------------------------- #


def test_hung_worker_times_out_and_heals():
    plan = FaultPlan(
        pool_hang_worker=0,
        pool_hang_at_batch=2,
        pool_hang_seconds=30.0,
        pool_reply_deadline_s=0.2,
    )
    pool = make_pool()
    try:
        with pool_faults(plan):
            pool.feed([1, 10])
            start = time.monotonic()
            pool.feed([2, 20])  # worker 0 sleeps 30s; deadline fires at 0.2s
            elapsed = time.monotonic() - start
        assert pool.timeouts >= 1
        assert pool.respawns >= 1
        assert elapsed < 10.0, "deadline must fire long before the hang ends"
        assert pool.collect() == [3, 30]
    finally:
        pool.close(terminate=True)


# --------------------------------------------------------------------- #
# Respawn exhaustion: graceful inline serial fallback
# --------------------------------------------------------------------- #


def test_respawn_exhaustion_falls_back_to_inline_serial():
    plan = FaultPlan(
        pool_kill_worker=0, pool_kill_at_batch=2, pool_fail_respawns=99
    )
    sleeps = []
    pool = make_pool(max_respawns=2, sleep=sleeps.append)
    try:
        with pool_faults(plan):
            pool.feed([1, 10])
            pool.feed([2, 20])  # kill + every respawn scripted to fail
        assert pool.serial_fallbacks == 1
        assert pool.inline_workers == [0]
        assert pool.pids[0] == 0, "slot 0 now runs in the master process"
        # Backoff between respawn attempts, capped exponential.
        assert sleeps and all(s <= 1.0 for s in sleeps)
        # The inline handler replayed the journal: totals are exact.
        pool.feed([3, 30])
        assert pool.collect() == [6, 60]
    finally:
        pool.close(terminate=True)


def test_inline_slot_survives_collect_epochs():
    plan = FaultPlan(
        pool_kill_worker=1, pool_kill_at_batch=1, pool_fail_respawns=99
    )
    pool = make_pool(max_respawns=1)
    try:
        with pool_faults(plan):
            pool.feed([1, 10])
        assert pool.inline_workers == [1]
        assert pool.collect() == [1, 10]
        pool.feed([2, 20])
        assert pool.collect() == [3, 30]
    finally:
        pool.close(terminate=True)


# --------------------------------------------------------------------- #
# Shutdown: graceful exit and terminate escalation
# --------------------------------------------------------------------- #


def test_graceful_close_joins_workers():
    pool = make_pool()
    pids = list(pool.pids)
    pool.feed([1, 2])
    pool.close()
    assert pool.closed
    for pid in pids:
        wait_for_death(pid)
    pool.close()  # idempotent


def test_terminate_escalates_to_kill():
    """close(terminate=True) must not hang on a worker that ignores
    SIGTERM; escalation SIGKILLs it within the join timeout."""

    class IgnoresTerm(SumHandler):
        def __init__(self, index=0, nworkers=0):
            super().__init__(index, nworkers)
            signal.signal(signal.SIGTERM, signal.SIG_IGN)

    pool = WorkerPool(2, IgnoresTerm)
    pids = list(pool.pids)
    pool.feed([1, 2])  # ensure the handlers (and SIG_IGN) are installed
    start = time.monotonic()
    pool.close(terminate=True)
    assert time.monotonic() - start < 15.0
    for pid in pids:
        wait_for_death(pid)
    assert pool.stuck_workers == 0


# --------------------------------------------------------------------- #
# parallel_map: one-shot fan-outs have no replay path
# --------------------------------------------------------------------- #


def test_parallel_map_child_death_raises_worker_unavailable():
    def die(x):
        if x == 3:
            os.kill(os.getpid(), signal.SIGKILL)
        return x

    with pytest.raises(WorkerUnavailable):
        parallel_map(die, list(range(8)), 2)
    # WorkerUnavailable subclasses IngestError: existing catch sites
    # treat both as "this parallel dispatch is lost".
    assert issubclass(WorkerUnavailable, IngestError)
