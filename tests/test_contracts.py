"""Tests for the runtime contract layer (repro.analysis.contracts).

Each contract must (a) reject a violating input when enforcement is on,
and (b) be a no-op — identity for decorators — when enforcement is off.
The suite itself runs with ``REPRO_CONTRACTS=1`` (see ``conftest.py``),
so the wired-in library classes are exercised in enforcing mode here.
"""

from random import Random

import pytest

from repro.analysis import contracts
from repro.analysis.contracts import (
    ContractViolation,
    check_history_list,
    check_segment_error,
    check_sorted_timeline,
    monotone_timestamps,
)
from repro.persistence.history_list import SampledHistoryList
from repro.persistence.timeline import TimelineIndex
from repro.pla.orourke import OnlinePLA
from repro.pla.segment import Segment


def test_violation_is_value_error():
    assert issubclass(ContractViolation, ValueError)


def test_suite_runs_enforced():
    assert contracts.enabled()


def test_enforced_context_manager_restores():
    assert contracts.enabled()
    with contracts.enforced(False):
        assert not contracts.enabled()
        with contracts.enforced(True):
            assert contracts.enabled()
        assert not contracts.enabled()
    assert contracts.enabled()


# --------------------------------------------------------------------- #
# monotone_timestamps
# --------------------------------------------------------------------- #


def test_decorator_is_identity_when_disabled():
    def fn(t):
        return t

    with contracts.enforced(False):
        assert monotone_timestamps()(fn) is fn


def test_decorator_rejects_nonincreasing_timestamps():
    calls = []

    @monotone_timestamps(param="t")
    def fn(t):
        calls.append(t)

    fn(1)
    fn(2)
    with pytest.raises(ContractViolation):
        fn(2)  # equal is also a violation: strictly increasing
    with pytest.raises(ContractViolation):
        fn(t=1)  # keyword passing goes through the same check
    assert calls == [1, 2]


def test_decorator_does_not_advance_on_failure():
    @monotone_timestamps(param="t")
    def fn(t, fail=False):
        if fail:
            raise RuntimeError("downstream failure")

    fn(5)
    with pytest.raises(RuntimeError):
        fn(7, fail=True)
    # The failed call at t=7 must not have been recorded.
    fn(6)


def test_decorator_tracks_per_instance():
    class Box:
        @monotone_timestamps(param="t")
        def feed(self, t):
            return t

    a, b = Box(), Box()
    a.feed(10)
    b.feed(1)  # independent clock per instance
    with pytest.raises(ContractViolation):
        a.feed(10)


def test_decorator_skips_none_timestamps():
    @monotone_timestamps(param="t")
    def fn(t=None):
        return t

    fn(None)
    fn(3)
    fn(None)  # auto-assignment sentinel is never checked
    with pytest.raises(ContractViolation):
        fn(3)


def test_decorator_requires_named_parameter():
    with pytest.raises(TypeError):

        @monotone_timestamps(param="t")
        def fn(x):
            return x


def test_history_list_offer_enforces_monotone_time():
    history = SampledHistoryList(probability=1.0, rng=Random(0))
    history.offer(1, 10)
    history.offer(2, 11)
    with pytest.raises(ContractViolation):
        history.offer(2, 12)


def test_online_pla_feed_enforces_across_runs():
    pla = OnlinePLA(delta=1.0)
    pla.feed(1, 1.0)
    pla.feed(2, 2.0)
    with pytest.raises(ContractViolation):
        pla.feed(1, 3.0)


# --------------------------------------------------------------------- #
# check_sorted_timeline
# --------------------------------------------------------------------- #


def test_sorted_timeline_accepts_and_rejects():
    check_sorted_timeline([[1, 2, 3], []])
    with pytest.raises(ContractViolation):
        check_sorted_timeline([[1, 2, 2]])
    with pytest.raises(ContractViolation):
        check_sorted_timeline([[1, 2, 3], [5, 4]])


def test_sorted_timeline_noop_when_disabled():
    with contracts.enforced(False):
        check_sorted_timeline([[3, 1]])


def test_timeline_index_rejects_unsorted_input():
    with pytest.raises(ContractViolation):
        TimelineIndex([[4, 2, 9]])


# --------------------------------------------------------------------- #
# check_segment_error
# --------------------------------------------------------------------- #


def test_segment_error_within_delta_passes():
    segment = Segment(t_start=0, t_end=4, slope=1.0, value_at_start=0.0)
    check_segment_error(segment, [0, 2, 4], [0.5, 1.5, 4.4], delta=0.5)


def test_segment_error_beyond_delta_raises():
    segment = Segment(t_start=0, t_end=4, slope=1.0, value_at_start=0.0)
    with pytest.raises(ContractViolation):
        check_segment_error(segment, [0, 2, 4], [0.0, 4.0, 4.0], delta=0.5)
    with contracts.enforced(False):
        check_segment_error(segment, [0, 2, 4], [0.0, 4.0, 4.0], delta=0.5)


# --------------------------------------------------------------------- #
# check_history_list
# --------------------------------------------------------------------- #


def _history(records, initial_value=0):
    history = SampledHistoryList(
        probability=0.5, rng=Random(0), initial_value=initial_value
    )
    for t, value in records:
        history.force_sample(t, value)
    return history


def test_history_list_accepts_monotone_records():
    check_history_list(_history([(1, 2), (4, 3), (9, 7)]))


def test_history_list_rejects_decreasing_values():
    with pytest.raises(ContractViolation):
        check_history_list(_history([(1, 5), (4, 3)]))


def test_history_list_rejects_value_below_initial():
    with pytest.raises(ContractViolation):
        check_history_list(_history([(1, 2)], initial_value=4))


def test_history_list_rejects_unsorted_times():
    with pytest.raises(ContractViolation):
        check_history_list(_history([(4, 1), (1, 2)]))


def test_history_list_noop_when_disabled():
    with contracts.enforced(False):
        check_history_list(_history([(4, 1), (1, 0)]))
