"""Serving-layer property tests: routing, cutover, boundary semantics.

The load-bearing property (ISSUE 8): a :class:`ServingRuntime` answer
must be bit-equal to the pure-live answer for *every* query, whichever
side of the frozen/live split serves it — including windows that end
exactly at the freeze tick, where the record at the boundary timestamp
must be counted by exactly one side (no double-count, no drop).
"""

from __future__ import annotations

import pytest

from repro.io import SerializationError
from repro.runtime import DegradedError, IngestRuntime
from repro.server.serving import ServingRuntime
from repro.store import SketchStore, StreamSpec

CHECKPOINT_EVERY = 50
N_RECORDS = 120
UNIVERSE = 32


def make_store():
    store = SketchStore(width=64, depth=3, join_width=64, seed=11)
    store.create(
        StreamSpec(
            name="urls",
            delta=4,
            universe=UNIVERSE,
            heavy_hitters=True,
            joinable=True,
            quantiles=True,
        )
    )
    return store


def make_records(n=N_RECORDS):
    """Explicit times 1..n so the freeze boundary lands on a known tick."""
    return [
        {
            "stream": "urls",
            "item": (7 * i) % UNIVERSE,
            "count": 1 + (i % 3),
            "time": i + 1,
        }
        for i in range(n)
    ]


@pytest.fixture
def served(tmp_path):
    """A runtime with 120 records, checkpoints at 50/100, view at 50."""
    runtime = IngestRuntime.create(
        tmp_path / "rt", make_store(), checkpoint_every=CHECKPOINT_EVERY
    )
    records = make_records()
    serving = ServingRuntime(runtime)
    for raw in records[:CHECKPOINT_EVERY]:
        assert serving.ingest(raw) is True
    assert serving.maybe_cutover(force=True)["swapped"] is True
    for raw in records[CHECKPOINT_EVERY:]:
        assert serving.ingest(raw) is True
    return serving, records


class TestFrozenViewMemoization:
    """Satellite 2: ``IngestRuntime.frozen_view`` is O(1) when idle."""

    def test_idle_calls_share_one_view(self, tmp_path):
        runtime = IngestRuntime.create(
            tmp_path / "rt", make_store(), checkpoint_every=CHECKPOINT_EVERY
        )
        for raw in make_records(20):
            runtime.ingest(raw)
        first = runtime.frozen_view()
        assert runtime.frozen_view() is first

    def test_ingest_invalidates(self, tmp_path):
        runtime = IngestRuntime.create(
            tmp_path / "rt", make_store(), checkpoint_every=CHECKPOINT_EVERY
        )
        records = make_records(21)
        for raw in records[:20]:
            runtime.ingest(raw)
        first = runtime.frozen_view()
        runtime.ingest(records[20])
        second = runtime.frozen_view()
        assert second is not first
        assert second.clock("urls") == 21

    def test_workers_width_invalidates(self, tmp_path):
        runtime = IngestRuntime.create(
            tmp_path / "rt", make_store(), checkpoint_every=CHECKPOINT_EVERY
        )
        for raw in make_records(20):
            runtime.ingest(raw)
        serial = runtime.frozen_view()
        assert runtime.frozen_view(workers=None) is serial


class TestBoundarySemantics:
    """Satellite 3: window-edge behaviour at the cutover boundary."""

    def test_routing_sides(self, served):
        serving, _records = served
        view = serving.view()
        fc = view.clock("urls")
        assert fc == CHECKPOINT_EVERY  # explicit times: tick == seq
        # t at or before the freeze tick: frozen side serves.
        routed, _t = serving._route("urls", float(fc), "auto")
        assert routed is view
        # One tick past the boundary: live side serves.
        routed, _t = serving._route("urls", float(fc) + 1.0, "auto")
        assert routed is None

    @pytest.mark.parametrize("verb", ["point", "self_join_size", "window_mass"])
    def test_sweep_across_boundary(self, served, verb):
        """Every query bit-equal to pure-live while sweeping t (and s)
        across the freeze tick, for every sketch family."""
        serving, _records = served
        fc = serving.view().clock("urls")
        now = serving.runtime.clock("urls")
        ts = [fc - 2, fc - 1, fc, fc + 1, fc + 2, now - 1, now]
        ss = [0, fc - 1, fc, fc + 1]
        for t in ts:
            for s in ss:
                if s > t:
                    continue
                if verb == "point":
                    for item in range(0, UNIVERSE, 5):
                        auto = serving.point("urls", item, s, t)
                        live = serving.point("urls", item, s, t, mode="live")
                        assert auto == live, (item, s, t)
                else:
                    query = getattr(serving, verb)
                    assert query("urls", s, t) == query(
                        "urls", s, t, mode="live"
                    ), (verb, s, t)

    def test_heavy_hitters_across_boundary(self, served):
        serving, _records = served
        fc = serving.view().clock("urls")
        now = serving.runtime.clock("urls")
        for t in [fc - 1, fc, fc + 1, now]:
            auto = serving.heavy_hitters("urls", 0.05, 0, t)
            live = serving.heavy_hitters("urls", 0.05, 0, t, mode="live")
            assert auto == live, t

    def test_t_none_resolves_before_routing(self, served):
        """t=None means the live clock on either side (the PR 3 clamp)."""
        serving, _records = served
        now = serving.runtime.clock("urls")
        assert serving.point("urls", 7, 0, None) == serving.point(
            "urls", 7, 0, now, mode="live"
        )

    def test_t_none_at_exact_boundary_serves_frozen(self, tmp_path):
        """With no tail past the checkpoint, "now" == freeze tick: the
        query routes frozen and the `t == now` clamp path must accept it."""
        runtime = IngestRuntime.create(
            tmp_path / "rt", make_store(), checkpoint_every=CHECKPOINT_EVERY
        )
        serving = ServingRuntime(runtime)
        for raw in make_records(CHECKPOINT_EVERY):
            serving.ingest(raw)
        assert serving.maybe_cutover(force=True)["swapped"] is True
        fc = serving.view().clock("urls")
        assert fc == serving.runtime.clock("urls")
        routed, t = serving._route("urls", None, "auto")
        assert routed is serving.view() and t == float(fc)  # sketchlint: disable=SL002 — exact resolved-clock equality is the property
        for item in range(0, UNIVERSE, 3):
            assert serving.point("urls", item) == serving.point(
                "urls", item, mode="live"
            )

    def test_boundary_record_counted_exactly_once(self, served):
        """The record at the freeze tick lands in exactly one side.

        ``window_mass`` tracks exact total count at the hierarchy root,
        so mass is additive over a window split: the frozen-served mass
        up to the boundary plus the live-served mass after it must equal
        the live-served mass of the union — drop or double-count of the
        boundary record would break the sum by its count.
        """
        serving, records = served
        fc = serving.view().clock("urls")
        boundary = records[CHECKPOINT_EVERY - 1]
        assert boundary["time"] == fc
        before = serving.window_mass("urls", fc - 1, fc, mode="frozen")
        after = serving.window_mass("urls", fc, fc + 1, mode="live")
        union = serving.window_mass("urls", fc - 1, fc + 1, mode="live")
        assert before + after == union  # sketchlint: disable=SL002 — root-counter mass is exact; a tolerance could hide a dropped boundary record
        assert before == float(boundary["count"])  # sketchlint: disable=SL002 — same: the boundary record's count is exact

    def test_frozen_mode_rejects_live_tail(self, served):
        serving, _records = served
        fc = serving.view().clock("urls")
        with pytest.raises(ValueError, match="live tail"):
            serving.point("urls", 1, 0, fc + 1, mode="frozen")

    def test_point_many_splits_by_boundary(self, served):
        serving, _records = served
        fc = serving.view().clock("urls")
        now = serving.runtime.clock("urls")
        items = [1, 5, 9, 13, 17]
        windows = [
            (0, fc),
            (0, fc + 1),
            (fc - 3, fc),
            (0, None),
            (3, now),
        ]
        mixed = serving.point_many("urls", items, windows)
        live = serving.point_many("urls", items, windows, mode="live")
        assert mixed == live
        single = [
            serving.point("urls", item, s, t if t is not None else now)
            for item, (s, t) in zip(items, windows)
        ]
        assert mixed == single


class TestCutover:
    def test_cadence_gating(self, tmp_path):
        ticks = [0.0]
        runtime = IngestRuntime.create(
            tmp_path / "rt", make_store(), checkpoint_every=10
        )
        serving = ServingRuntime(
            runtime,
            freeze_every=25,
            freeze_interval_s=60.0,
            clock=lambda: ticks[0],
        )
        records = make_records(40)
        serving.ingest_batch(records[:10])
        status = serving.maybe_cutover(force=True)
        assert status["swapped"] is True and status["view_seq"] == 10
        # 10 more records -> checkpoint at 20, but 20 - 10 < freeze_every.
        serving.ingest_batch(records[10:20])
        status = serving.maybe_cutover()
        assert status["swapped"] is False
        assert "cadence" in status["reason"]
        # Cross the record cadence: checkpoint 40 is 30 > 25 past the view.
        serving.ingest_batch(records[20:40])
        status = serving.maybe_cutover()
        assert status["swapped"] is True and status["view_seq"] == 40

    def test_wall_clock_cadence(self, tmp_path):
        ticks = [0.0]
        runtime = IngestRuntime.create(
            tmp_path / "rt", make_store(), checkpoint_every=10
        )
        serving = ServingRuntime(
            runtime,
            freeze_every=1000,
            freeze_interval_s=30.0,
            clock=lambda: ticks[0],
        )
        records = make_records(20)
        serving.ingest_batch(records[:10])
        assert serving.maybe_cutover(force=True)["swapped"] is True
        serving.ingest_batch(records[10:20])
        assert serving.maybe_cutover()["swapped"] is False
        ticks[0] = 31.0
        status = serving.maybe_cutover()
        assert status["swapped"] is True and status["view_seq"] == 20

    def test_noop_when_no_new_checkpoint(self, served):
        serving, _records = served
        serving.maybe_cutover(force=True)
        before = serving.view()
        status = serving.maybe_cutover(force=True)
        assert status["swapped"] is False
        assert "newest checkpoint" in status["reason"]
        assert serving.view() is before

    def test_unreadable_checkpoint_is_skipped(self, served, monkeypatch):
        """A checkpoint pruned or damaged mid-load must not kill serving."""
        serving, _records = served
        before = serving.view()

        def boom(cls, directory):
            raise SerializationError("pruned from under us")

        monkeypatch.setattr(
            SketchStore, "open", classmethod(boom)
        )
        status = serving.maybe_cutover(force=True)
        assert status["swapped"] is False
        assert "unreadable" in status["reason"]
        assert serving.view() is before

    def test_serving_snapshot(self, served):
        serving, _records = served
        snap = serving.serving_snapshot()
        assert snap["view_seq"] == CHECKPOINT_EVERY
        assert snap["tail_records"] == N_RECORDS - CHECKPOINT_EVERY
        assert snap["cutovers"] == 1
        health_block = serving.health()["serving"]
        describe_block = serving.describe()["serving"]
        health_block.pop("view_age_s")
        describe_block.pop("view_age_s")
        assert health_block == describe_block


class TestDegradedServing:
    def test_degraded_keeps_reads_refuses_writes(self, served):
        serving, _records = served
        serving.runtime.monitor.degrade(
            "wal-io", "disk full", recoverable=False
        )
        with pytest.raises(DegradedError):
            serving.ingest({"stream": "urls", "item": 1})
        # Reads still flow, from both sides of the split.
        fc = serving.view().clock("urls")
        assert serving.point("urls", 1, 0, fc) >= 0.0
        assert serving.point("urls", 1, mode="live") >= 0.0
        assert serving.health()["state"] == "degraded-readonly"

    def test_failed_refuses_reads(self, served):
        serving, _records = served
        serving.runtime.monitor.fail("fsck", "unrecoverable damage")
        with pytest.raises(DegradedError):
            serving.point("urls", 1)
        with pytest.raises(DegradedError):
            serving.point_many("urls", [1, 2])
