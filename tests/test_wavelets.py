"""Tests for historical window Haar wavelet synopses."""

import math

import numpy as np
import pytest

from repro.core.wavelets import HaarCoefficient, PersistentWavelets
from repro.streams.model import Stream


def exact_haar_coefficients(freqs: np.ndarray) -> dict[tuple[int, int], float]:
    """All Haar coefficients of a (power-of-two) frequency vector."""
    n = len(freqs)
    log_n = n.bit_length() - 1
    out = {}
    for level in range(1, log_n + 1):
        width = 1 << level
        for position in range(n // width):
            lo = position * width
            left = freqs[lo : lo + width // 2].sum()
            right = freqs[lo + width // 2 : lo + width].sum()
            out[(level, position)] = (left - right) / math.sqrt(width)
    return out


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(151)
    n = 256
    items = rng.integers(0, n, size=4000)
    items[::3] = 40  # spike -> large coefficients around value 40
    items[1::7] = 200
    stream = Stream(items=items, universe=n)
    freqs = np.bincount(items, minlength=n).astype(float)
    wavelets = PersistentWavelets(universe=n, width=256, depth=4, delta=6)
    wavelets.ingest(stream)
    return freqs, wavelets


class TestCoefficients:
    def test_individual_coefficients_match_exact(self, setup):
        freqs, wavelets = setup
        exact = exact_haar_coefficients(freqs)
        for (level, position) in [(1, 20), (2, 10), (4, 2), (8, 0)]:
            estimate = wavelets.coefficient(level, position)
            # Error: 2 range sums, each O(log n) point queries of +-delta.
            slack = 2 * 16 * 6 / math.sqrt(1 << level) + 2
            assert estimate == pytest.approx(
                exact[(level, position)], abs=slack
            )

    def test_scaling_coefficient(self, setup):
        freqs, wavelets = setup
        expected = freqs.sum() / math.sqrt(len(freqs))
        assert wavelets.scaling_coefficient() == pytest.approx(
            expected, rel=0.05
        )

    def test_validation(self, setup):
        _, wavelets = setup
        with pytest.raises(ValueError):
            wavelets.coefficient(0, 0)
        with pytest.raises(ValueError):
            wavelets.coefficient(1, 10_000)
        with pytest.raises(ValueError):
            wavelets.top_coefficients(0)


class TestTopB:
    def test_finds_dominant_coefficients(self, setup):
        freqs, wavelets = setup
        exact = exact_haar_coefficients(freqs)
        true_top = sorted(exact, key=lambda k: abs(exact[k]), reverse=True)[:5]
        found = wavelets.top_coefficients(8)
        found_keys = {(c.level, c.position) for c in found}
        hits = sum(1 for key in true_top if key in found_keys)
        assert hits >= 4

    def test_magnitudes_descending(self, setup):
        _, wavelets = setup
        found = wavelets.top_coefficients(6)
        magnitudes = [abs(c.value) for c in found]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_window_sensitivity(self, setup):
        """Coefficients of disjoint windows differ: the early spike at
        item 40 dominates only windows that contain it."""
        _, wavelets = setup
        early = wavelets.top_coefficients(3, s=0, t=2000)
        supports = [c.support for c in early]
        assert any(lo <= 40 <= hi for lo, hi in supports)


class TestReconstruction:
    def test_hot_item_frequency_recovered(self, setup):
        freqs, wavelets = setup
        approx = wavelets.reconstruct([40, 200], b=24)
        assert approx[40] == pytest.approx(freqs[40], rel=0.25)
        assert approx[200] == pytest.approx(freqs[200], rel=0.35)

    def test_support_property(self):
        coefficient = HaarCoefficient(level=3, position=2, value=1.0)
        assert coefficient.support == (16, 23)
