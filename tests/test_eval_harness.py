"""Tests for the evaluation harness and reporting."""

import json

import numpy as np
import pytest

from repro.eval import harness
from repro.eval.reporting import format_table, save_json
from repro.streams.model import Stream


class TestDatasets:
    def test_registry_has_paper_workloads(self):
        assert set(harness.DATASETS) == {"Zipf_3", "ClientID", "ObjectID"}

    def test_get_dataset_cached(self):
        a = harness.get_dataset("Zipf_3", 2000)
        b = harness.get_dataset("Zipf_3", 2000)
        assert a is b

    def test_truth_matches_dataset(self):
        stream = harness.get_dataset("ObjectID", 2000)
        truth = harness.get_truth("ObjectID", 2000)
        item = int(stream.items[0])
        expected = int((stream.items == item).sum())
        assert truth.frequency(item) == expected

    def test_paper_window(self):
        assert harness.paper_window(1000) == (200, 600)

    def test_scaled_floor(self):
        assert harness.scaled(10) >= 1000


class TestCompactItems:
    def test_bijection_preserves_frequencies(self):
        stream = Stream(items=[100, 5, 100, 7, 5, 100])
        compact = compacted = harness.compact_items(stream)
        assert compacted.universe == 3
        # Frequencies preserved under the rank mapping.
        values, counts = np.unique(compact.items, return_counts=True)
        assert sorted(counts) == [1, 2, 3]

    def test_times_preserved(self):
        stream = Stream(items=[9, 9, 2], times=[5, 8, 11])
        compact = harness.compact_items(stream)
        assert list(compact.times) == [5, 8, 11]


class TestBuilders:
    def test_pla_builder_cached(self):
        a = harness.build_pla_cm("Zipf_3", 2000, 50, width=128, depth=3)
        b = harness.build_pla_cm("Zipf_3", 2000, 50, width=128, depth=3)
        assert a is b
        assert a.now == 2000

    def test_sample_builder_varies_with_seed(self):
        a = harness.build_sample(
            "Zipf_3", 2000, 50, sampling_seed=1, width=128, depth=3
        )
        b = harness.build_sample(
            "Zipf_3", 2000, 50, sampling_seed=2, width=128, depth=3
        )
        assert a is not b

    def test_hh_builder_kinds(self):
        pla = harness.build_hh("Zipf_3", 2000, 10, kind="pla", width=64, depth=2)
        pwc = harness.build_hh("Zipf_3", 2000, 10, kind="pwc", width=64, depth=2)
        assert pla is not pwc
        with pytest.raises(ValueError):
            harness.build_hh("Zipf_3", 2000, 10, kind="nope")


class TestReporting:
    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.00001]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_save_json_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            "repro.eval.reporting.RESULTS_DIR", tmp_path / "results"
        )
        path = save_json("unit", {"rows": [[1, 2]]})
        assert json.loads(path.read_text()) == {"rows": [[1, 2]]}
