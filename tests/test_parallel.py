"""Multi-core execution layer: bit-equality, worker death, crash safety.

The parallel layer's contract is the same as the batch pipeline's one
level down: ``workers=N`` is an execution detail, *never* a semantic
one.  These tests pin it from every side — hypothesis-driven deep
fingerprint equality for all sketch types, merge-on-query mid-stream,
a SIGKILL'd worker healed transparently (respawn + journal replay, bit
for bit) with the WAL intact, a simulated crash in the middle of a
parallel batch recovering exactly like its serial twin, and the frozen
engine's parallel freeze / fan-out / scalar fast path answering
bit-identically to the serial snapshot.  (Pool-level healing edge
cases — hung replies, respawn exhaustion, the inline serial fallback —
live in ``tests/test_pool_healing.py``.)

Set ``REPRO_TEST_WORKERS`` to widen the pools under test (CI runs a
dedicated 2-worker leg).
"""

import os
import signal
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import frozen as frozen_mod
from repro.engine.frozen import freeze
from repro.parallel import IngestError, fork_available, parallel_map
from repro.runtime import FaultPlan, IngestRuntime, SimulatedCrash
from tests.test_batch_ingest import (
    FACTORIES,
    build_stream,
    fingerprint,
    scalar_ingest,
    update_lists,
)
from tests.test_runtime_batch import make_raws, make_store, store_state, wal_bytes

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="parallel layer requires os.fork"
)

#: Pool widths exercised by the equality tests; CI's parallel leg pins
#: the width via REPRO_TEST_WORKERS, local runs sweep 2-4.
_ENV_WORKERS = os.environ.get("REPRO_TEST_WORKERS")
WORKER_WIDTHS = (
    (int(_ENV_WORKERS),) if _ENV_WORKERS else (2, 3, 4)
)

#: Sketch types whose snapshots the frozen engine can compile.
FREEZABLE = ("PLA_CM", "PWC_CM", "PWC_AMS", "Sample_AMS", "PLA_HH", "Sharded")


def parallel_twin(name, workers):
    sketch = FACTORIES[name]()
    sketch.set_workers(workers)
    return sketch


# --------------------------------------------------------------------- #
# The tentpole property: parallel == serial, bit for bit, every type
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("name", sorted(FACTORIES))
@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    updates=update_lists,
    chunk=st.integers(min_value=1, max_value=41),
    workers=st.sampled_from(WORKER_WIDTHS),
)
def test_parallel_bit_identical_to_serial(name, updates, chunk, workers):
    stream = build_stream(updates)
    serial = FACTORIES[name]()
    serial.ingest(stream, batch_size=chunk)
    parallel = parallel_twin(name, workers)
    try:
        parallel.ingest(stream, batch_size=chunk)
    finally:
        parallel.detach_workers()
    assert fingerprint(parallel) == fingerprint(serial)


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_mid_stream_queries_merge_and_stay_equal(name):
    """Queries between parallel batches see fully merged state."""
    stream = build_stream([(i % 7, 1, 1) for i in range(120)])
    serial = FACTORIES[name]()
    scalar_ingest(serial, stream)
    parallel = parallel_twin(name, 2)
    half = len(stream) // 2
    try:
        parallel.ingest_batch(
            stream.times[:half], stream.items[:half], stream.counts[:half]
        )
        # Point query in the middle forces a merge; the pool stays
        # alive and keeps feeding afterwards.
        mid = int(stream.times[half - 1])
        assert parallel.point(3, 0, mid) is not None
        parallel.ingest_batch(
            stream.times[half:], stream.items[half:], stream.counts[half:]
        )
        end = int(stream.times[-1])
        for item in (0, 3, 6):
            assert parallel.point(item, 0, end) == serial.point(item, 0, end)
    finally:
        parallel.detach_workers()
    assert fingerprint(parallel) == fingerprint(serial)


def test_set_workers_validates_and_reports():
    sketch = FACTORIES["PLA_CM"]()
    assert sketch.workers == 1
    sketch.set_workers(3)
    assert sketch.workers == 3
    with pytest.raises(ValueError, match="workers"):
        sketch.set_workers(0)
    with pytest.raises(ValueError, match="workers"):
        FACTORIES["PLA_CM"]().__class__(width=8, depth=1, delta=5, workers=0)


# --------------------------------------------------------------------- #
# Worker death: transparent healing, bit-identical results, durable WAL
# --------------------------------------------------------------------- #


def _kill_first_worker(sketch):
    pid = sketch._pool.pids[0]
    os.kill(pid, signal.SIGKILL)
    # The pool notices the death through the pipe; give the kernel a
    # beat to reap so the next roundtrip sees EOF, not a partial read.
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            break
        time.sleep(0.01)


def test_worker_death_heals_bit_identically():
    """A SIGKILL'd worker is respawned and its batches replayed: the
    sketch keeps ingesting and stays bit-identical to its serial twin."""
    times = np.arange(1, 301, dtype=np.int64)
    items = (times % 16).astype(np.int64)
    serial = FACTORIES["PLA_CM"]()
    serial.ingest_batch(times[:200], items[:200])

    sketch = parallel_twin("PLA_CM", 2)
    try:
        sketch.ingest_batch(times[:100], items[:100])
        _kill_first_worker(sketch)
        # The pool notices the corpse on the next roundtrip, respawns
        # the slot and replays the journaled feed — no error, no loss.
        sketch.ingest_batch(times[100:200], items[100:200])
        assert sketch._pool.respawns >= 1
        # Compare at the *same* ingest position (PLA interpolation at a
        # timestamp legitimately shifts once later points fold in).
        assert sketch.point(3, 0, 200) == serial.point(3, 0, 200)
        sketch.ingest_batch(times[200:], items[200:])
        serial.ingest_batch(times[200:], items[200:])
        assert sketch.point(3, 0, 300) == serial.point(3, 0, 300)
    finally:
        sketch.detach_workers()
    assert fingerprint(sketch) == fingerprint(serial)


def test_worker_death_in_runtime_heals_and_stays_durable(tmp_path):
    raws = make_raws(n=200, dirty=False)
    twin = IngestRuntime.create(
        tmp_path / "twin", make_store(), checkpoint_every=75
    )
    for lo in range(0, len(raws), 50):
        twin.ingest_batch(raws[lo : lo + 50])

    victim = IngestRuntime.create(
        tmp_path / "victim", make_store(), checkpoint_every=75, workers=2
    )
    victim.ingest_batch(raws[:50])
    victim.ingest_batch(raws[50:100])
    # Kill a worker of one parallel sketch, then keep ingesting: the
    # pool heals the slot (respawn + journal replay) so the batch both
    # frames into the WAL *and* applies — no poisoning, no divergence.
    sketches = [
        entry
        for entry in victim.store._sketches()
        if getattr(entry, "_pool", None) is not None
    ]
    assert sketches, "parallel ingest should have forked at least one pool"
    pool = sketches[0]._pool
    _kill_first_worker(sketches[0])
    victim.ingest_batch(raws[100:150])
    assert pool.respawns >= 1
    victim.ingest_batch(raws[150:])
    assert wal_bytes(victim), "WAL must survive the worker death"
    victim.store.drain_workers()
    assert victim.applied_seq == twin.applied_seq
    assert victim._clocks == twin._clocks
    assert store_state(victim) == store_state(twin)
    victim.close()

    # And the on-disk state recovers to the same answers regardless.
    recovered = IngestRuntime.recover(tmp_path / "victim", checkpoint_every=75)
    assert recovered.applied_seq == twin.applied_seq
    assert store_state(recovered) == store_state(twin)


# --------------------------------------------------------------------- #
# Simulated crash in the middle of a parallel batch
# --------------------------------------------------------------------- #


@pytest.mark.faults
@pytest.mark.parametrize(
    "plan, durable",
    [
        (FaultPlan(crash_before_record=83), 82),
        (FaultPlan(torn_write_at_record=83), 82),
        (FaultPlan(crash_after_record=83), 100),
    ],
)
def test_crash_mid_parallel_batch_recovers_like_serial(tmp_path, plan, durable):
    raws = make_raws(n=150, dirty=False)
    twin = IngestRuntime.create(
        tmp_path / "twin", make_store(), checkpoint_every=60
    )
    for lo in range(0, len(raws), 50):
        twin.ingest_batch(raws[lo : lo + 50])

    victim = IngestRuntime.create(
        tmp_path / "victim",
        make_store(),
        checkpoint_every=60,
        faults=plan,
        sleep=lambda _t: None,
        workers=2,
    )
    with pytest.raises(SimulatedCrash):
        for lo in range(0, len(raws), 50):
            victim.ingest_batch(raws[lo : lo + 50])
    victim.close()

    recovered = IngestRuntime.recover(
        tmp_path / "victim", checkpoint_every=60, workers=2
    )
    assert recovered.applied_seq == durable
    recovered.ingest_batch(raws[recovered.applied_seq :])
    recovered.store.drain_workers()

    assert recovered.applied_seq == twin.applied_seq
    assert recovered._clocks == twin._clocks
    assert store_state(recovered) == store_state(twin)


# --------------------------------------------------------------------- #
# Frozen engine: parallel freeze, fan-out, scalar fast path
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("name", FREEZABLE)
def test_parallel_freeze_and_fanout_bit_equal(name, monkeypatch):
    # Force the fan-out even for tiny probe batches.
    monkeypatch.setattr(frozen_mod, "_FANOUT_MIN", 8)
    stream = build_stream([(i % 11, 1, 1) for i in range(160)])
    serial_sketch = FACTORIES[name]()
    scalar_ingest(serial_sketch, stream)
    serial_frozen = freeze(serial_sketch)

    parallel_sketch = parallel_twin(name, 3)
    parallel_sketch.ingest(stream, batch_size=64)
    parallel_frozen = freeze(parallel_sketch, workers=3)

    end = int(stream.times[-1])
    items = np.tile(np.arange(11, dtype=np.int64), 4)
    windows = [(0, end), (end // 3, 2 * end // 3)] * (len(items) // 2)
    got = parallel_frozen.point_many(items, windows)
    want = serial_frozen.point_many(items, windows)
    np.testing.assert_array_equal(got, want)
    # Scalar fast path answers exactly like the serial snapshot.
    for item in (0, 5, 10):
        for s, t in ((0, end), (end // 3, 2 * end // 3)):
            assert parallel_frozen.point(item, s, t) == serial_frozen.point(
                item, s, t
            )


def test_parallel_map_scatter_and_errors():
    # Order-preserving scatter across strides.
    assert parallel_map(lambda x: x * x, list(range(17)), 3) == [
        x * x for x in range(17)
    ]
    # Small task lists run inline (no fork cost), same results.
    assert parallel_map(lambda x: -x, [4], 4) == [-4]
    # A raising task surfaces as IngestError, not a hang.
    def boom(x):
        raise RuntimeError(f"task {x} failed")

    with pytest.raises(IngestError, match="task"):
        parallel_map(boom, list(range(6)), 2)
