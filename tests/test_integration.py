"""End-to-end integration: the full public API on one realistic workload.

Simulates the paper's Section 1.5 scenario — a web access log sketched
once, then analysed historically — exercising every persistent structure
together and cross-checking their answers against ground truth and
against each other.
"""

import math

import pytest

from repro import (
    GroundTruth,
    HistoricalCountMin,
    PersistentAMS,
    PersistentCountMin,
    PersistentHeavyHitters,
    make_ams_pair,
)
from repro.eval.harness import compact_items
from repro.streams.worldcup import client_id_stream, object_id_stream


@pytest.fixture(scope="module")
def workload():
    urls = object_id_stream(12_000, seed=81)
    clients = client_id_stream(12_000, seed=82)
    return urls, clients, GroundTruth(urls), GroundTruth(clients)


def test_full_analytics_pipeline(workload):
    urls, clients, url_truth, client_truth = workload
    m = len(urls)

    # 1. Ingest once, through every structure a monitoring stack would run.
    trending = PersistentCountMin(width=2048, depth=5, delta=25, seed=11)
    historical = HistoricalCountMin(width=2048, depth=5, eps=0.01, seed=11)
    url_join, client_join = make_ams_pair(
        width=1024, depth=5, delta_f=25, seed=12, independent_copies=2
    )
    compact_urls = compact_items(urls)
    hh = PersistentHeavyHitters(
        universe=compact_urls.universe, width=512, depth=4, delta=12, seed=13
    )
    trending.ingest(urls)
    historical.ingest(urls)
    url_join.ingest(urls)
    client_join.ingest(clients)
    hh.ingest(compact_urls)
    compact_truth = GroundTruth(compact_urls)

    # 2. Arbitrary-window point queries track truth (Theorem 3.1).
    s, t = m // 4, 3 * m // 4
    window_l1 = url_truth.window_l1(s, t)
    eps_cm = math.e / 2048
    for item, freq in url_truth.top_k(10, s, t):
        estimate = trending.point(item, s, t)
        assert abs(estimate - freq) <= eps_cm * window_l1 + 2 * 25 + 2

    # 3. Historical (s=0) queries have purely relative error (Thm 5.1).
    for checkpoint in (m // 10, m // 2, m):
        for item, freq in url_truth.top_k(5, 0, checkpoint):
            estimate = historical.point(item, t=checkpoint)
            assert abs(estimate - freq) <= 4 * 0.01 * checkpoint + 2

    # 4. Window heavy hitters: high recall against truth (Thm 3.2).
    phi = 0.01
    found = hh.heavy_hitters(phi, s, t)
    actual = compact_truth.heavy_hitters(phi, s, t)
    recall = len(set(found) & set(actual)) / max(len(actual), 1)
    assert recall >= 0.8

    # 5. Window self-join via the sampling technique (Thm 4.2).
    actual_sj = url_truth.self_join_size(s, t)
    estimate_sj = url_join.self_join_size(s, t)
    assert abs(estimate_sj - actual_sj) <= 0.5 * actual_sj

    # 6. Cross-stream join size between URLs and clients.
    actual_join = url_truth.join_size(client_truth, s, t)
    estimate_join = url_join.join_size(client_join, s, t)
    eps_ams = 2.0 / math.sqrt(1024)
    bound = 4 * eps_ams * math.sqrt(
        (url_truth.self_join_size(s, t) + (25 / eps_ams) ** 2)
        * (client_truth.self_join_size(s, t) + (25 / eps_ams) ** 2)
    )
    assert abs(estimate_join - actual_join) <= bound

    # 7. Everything stayed sublinear (the point of the paper).
    for sketch in (trending, url_join):
        assert sketch.persistence_words() < 2 * m


def test_sketch_answers_consistent_across_structures(workload):
    """The PLA and Sample techniques agree with each other (both are
    estimating the same frequencies) within their combined error."""
    urls, _, url_truth, _ = workload
    m = len(urls)
    pla = PersistentCountMin(width=2048, depth=5, delta=20, seed=14)
    sample = PersistentAMS(width=2048, depth=5, delta=20, seed=14)
    pla.ingest(urls)
    sample.ingest(urls)
    s, t = m // 5, 4 * m // 5
    l1 = url_truth.window_l1(s, t)
    l2 = math.sqrt(url_truth.self_join_size(s, t))
    combined = (math.e / 2048) * l1 + 4 * (2 / math.sqrt(2048)) * l2 + 4 * 20
    for item, _ in url_truth.top_k(10, s, t):
        assert abs(pla.point(item, s, t) - sample.point(item, s, t)) <= combined
