"""Tests for ingest policies: malformed/late handling, dead letters, retry."""

import json

import pytest

from repro.runtime import (
    FaultPlan,
    IngestPolicy,
    IngestRuntime,
    LateRecordError,
    MalformedRecordError,
    SnapshotRetryError,
)
from repro.runtime.policies import DeadLetterFile, IngestStats, run_with_retry
from repro.store import SketchStore, StreamSpec
from repro.streams.records import IngestRecord, RecordError, parse_record


def make_store():
    store = SketchStore(width=64, depth=3, join_width=64, seed=3)
    store.create(StreamSpec(name="urls", delta=4))
    return store


def make_runtime(tmp_path, **kwargs):
    kwargs.setdefault("checkpoint_every", 1000)
    return IngestRuntime.create(tmp_path / "rt", make_store(), **kwargs)


class TestParseRecord:
    def test_valid(self):
        record = parse_record({"stream": "urls", "item": 3})
        assert record == IngestRecord(stream="urls", item=3, count=1, time=None)

    @pytest.mark.parametrize(
        "raw",
        [
            "not a dict",
            {},
            {"stream": "", "item": 1},
            {"stream": "a/b", "item": 1},
            {"stream": "s"},
            {"stream": "s", "item": "three"},
            {"stream": "s", "item": True},
            {"stream": "s", "item": -1},
            {"stream": "s", "item": 1, "count": 0},
            {"stream": "s", "item": 1, "time": 0},
            {"stream": "s", "item": 1, "time": 1.5},
            {"stream": "s", "item": 1, "bogus": 2},
        ],
    )
    def test_malformed(self, raw):
        with pytest.raises(RecordError):
            parse_record(raw)


class TestPolicyValidation:
    def test_bad_actions_rejected(self):
        with pytest.raises(ValueError):
            IngestPolicy(on_malformed="explode")
        with pytest.raises(ValueError):
            IngestPolicy(on_late="ignore")
        with pytest.raises(ValueError):
            IngestPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            IngestPolicy(backoff_factor=0.5)


class TestMalformed:
    def test_raise(self, tmp_path):
        runtime = make_runtime(tmp_path)
        with pytest.raises(MalformedRecordError):
            runtime.ingest({"stream": "urls", "item": "zzz"})
        assert runtime.stats.malformed == 1

    def test_skip(self, tmp_path):
        runtime = make_runtime(
            tmp_path, policy=IngestPolicy(on_malformed="skip")
        )
        assert runtime.ingest({"stream": "urls", "item": "zzz"}) is False
        assert runtime.stats.malformed == 1
        assert runtime.stats.quarantined == 0
        assert runtime.dead_letters.entries() == []

    def test_quarantine(self, tmp_path):
        runtime = make_runtime(
            tmp_path, policy=IngestPolicy(on_malformed="quarantine")
        )
        assert runtime.ingest({"stream": "urls", "item": "zzz"}) is False
        (entry,) = runtime.dead_letters.entries()
        assert entry["kind"] == "malformed"
        assert entry["record"] == {"stream": "urls", "item": "zzz"}
        assert runtime.stats.quarantined == 1

    def test_unknown_stream_is_malformed(self, tmp_path):
        runtime = make_runtime(
            tmp_path, policy=IngestPolicy(on_malformed="quarantine")
        )
        assert runtime.ingest({"stream": "nope", "item": 1}) is False
        (entry,) = runtime.dead_letters.entries()
        assert "unknown stream" in entry["reason"]

    def test_record_error_instance_goes_through_policy(self, tmp_path):
        """read_jsonl_records yields RecordError for bad JSON lines."""
        runtime = make_runtime(
            tmp_path, policy=IngestPolicy(on_malformed="skip")
        )
        assert runtime.ingest(RecordError("line 3: invalid JSON")) is False
        assert runtime.stats.malformed == 1


class TestLate:
    def test_duplicate_timestamp_is_late(self, tmp_path):
        runtime = make_runtime(tmp_path)
        runtime.ingest({"stream": "urls", "item": 1, "time": 5})
        with pytest.raises(LateRecordError):
            runtime.ingest({"stream": "urls", "item": 2, "time": 5})
        with pytest.raises(LateRecordError):
            runtime.ingest({"stream": "urls", "item": 2, "time": 4})
        assert runtime.stats.late == 2

    def test_skip_keeps_clock(self, tmp_path):
        runtime = make_runtime(tmp_path, policy=IngestPolicy(on_late="skip"))
        runtime.ingest({"stream": "urls", "item": 1, "time": 5})
        assert runtime.ingest({"stream": "urls", "item": 2, "time": 3}) is False
        assert runtime.clock("urls") == 5
        # The store never saw the late record.
        assert runtime.store.point("urls", 2) == 0.0

    def test_quarantine_records_reason(self, tmp_path):
        runtime = make_runtime(
            tmp_path, policy=IngestPolicy(on_late="quarantine")
        )
        runtime.ingest({"stream": "urls", "item": 1, "time": 5})
        runtime.ingest({"stream": "urls", "item": 2, "time": 5})
        (entry,) = runtime.dead_letters.entries()
        assert entry["kind"] == "late"
        assert "clock is at 5" in entry["reason"]

    def test_auto_time_never_late(self, tmp_path):
        runtime = make_runtime(tmp_path)
        runtime.ingest({"stream": "urls", "item": 1, "time": 5})
        assert runtime.ingest({"stream": "urls", "item": 1}) is True
        assert runtime.clock("urls") == 6


class TestRetry:
    def test_transient_io_error_retried_with_backoff(self, tmp_path):
        sleeps = []
        plan = FaultPlan(io_error_at_checkpoint=1, io_error_count=2)
        runtime = make_runtime(
            tmp_path,
            policy=IngestPolicy(max_retries=3, backoff_base=0.05),
            faults=plan,
            sleep=sleeps.append,
        )
        runtime.ingest({"stream": "urls", "item": 1})
        runtime.checkpoint()
        assert sleeps == [0.05, 0.1]
        assert runtime.stats.snapshot_retries == 2
        # Bootstrap checkpoint (at create) + the explicit one above.
        assert runtime.stats.checkpoints == 2

    def test_budget_exhaustion_raises(self, tmp_path):
        plan = FaultPlan(io_error_at_checkpoint=1, io_error_count=10)
        runtime = make_runtime(
            tmp_path,
            policy=IngestPolicy(max_retries=2),
            faults=plan,
            sleep=lambda _t: None,
        )
        runtime.ingest({"stream": "urls", "item": 1})
        with pytest.raises(SnapshotRetryError):
            runtime.checkpoint()
        # The record is still durable in the WAL: recovery replays it.
        recovered = IngestRuntime.recover(tmp_path / "rt")
        assert recovered.stats.replayed == 1
        assert recovered.clock("urls") == 1

    def test_per_sleep_cap_saturates_exponential_growth(self):
        sleeps = []
        policy = IngestPolicy(
            max_retries=6,
            backoff_base=0.5,
            backoff_factor=4.0,
            backoff_cap=2.0,
            backoff_total_cap=100.0,
        )

        def always_fails():
            raise OSError("dead disk")

        with pytest.raises(SnapshotRetryError):
            run_with_retry(
                always_fails, policy, IngestStats(), sleep=sleeps.append
            )
        # 0.5, 2.0 (4x growth saturates at the cap), then flat.
        assert sleeps == [0.5, 2.0, 2.0, 2.0, 2.0, 2.0]

    def test_total_cap_bounds_cumulative_retry_latency(self):
        """Worst-case retry latency is bounded no matter the budget: once
        the cumulative cap is spent, remaining retries run back-to-back."""
        sleeps = []
        policy = IngestPolicy(
            max_retries=10,
            backoff_base=1.0,
            backoff_factor=1.0,
            backoff_cap=10.0,
            backoff_total_cap=2.5,
        )

        def always_fails():
            raise OSError("dead disk")

        with pytest.raises(SnapshotRetryError):
            run_with_retry(
                always_fails, policy, IngestStats(), sleep=sleeps.append
            )
        assert sum(sleeps) == pytest.approx(policy.backoff_total_cap)
        # 1.0 + 1.0 + the 0.5 remainder, then zero-length sleeps.
        assert sleeps[:3] == pytest.approx([1.0, 1.0, 0.5])
        assert sleeps[3:] == pytest.approx([0.0] * len(sleeps[3:]))

    def test_cap_validation(self):
        with pytest.raises(ValueError, match="backoff_cap"):
            IngestPolicy(backoff_cap=-1.0)
        with pytest.raises(ValueError, match="backoff_total_cap"):
            IngestPolicy(backoff_total_cap=-0.1)

    def test_run_with_retry_returns_value(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("flaky disk")
            return "ok"

        stats = IngestStats()
        result = run_with_retry(
            flaky, IngestPolicy(max_retries=5), stats, sleep=lambda _t: None
        )
        assert result == "ok"
        assert stats.snapshot_retries == 2


class TestDeadLetterFile:
    def test_unserializable_record_stringified(self, tmp_path):
        letters = DeadLetterFile(tmp_path / "dead.jsonl")
        letters.append("malformed", "why", {1, 2})
        (entry,) = letters.entries()
        assert "1" in entry["record"]

    def test_missing_file_is_empty(self, tmp_path):
        assert DeadLetterFile(tmp_path / "nope.jsonl").entries() == []

    def test_count_matches_entries(self, tmp_path):
        letters = DeadLetterFile(tmp_path / "dead.jsonl")
        assert letters.count() == 0
        for i in range(7):
            letters.append("malformed", f"reason {i}", {"item": i})
        assert letters.count() == 7 == len(letters.entries())

    def test_count_lazy_scan_then_incremental(self, tmp_path):
        """A pre-existing file is scanned once; appends just bump the
        counter (no re-read)."""
        path = tmp_path / "dead.jsonl"
        first = DeadLetterFile(path)
        for i in range(5):
            first.append("late", "clock", {"item": i})
        reopened = DeadLetterFile(path)
        assert reopened.count() == 5
        reopened.append("late", "clock", {"item": 99})
        assert reopened.count() == 6

    def test_count_does_not_materialize_entries(self, tmp_path, monkeypatch):
        """Regression: describe() used to call entries() just to count.

        With a large quarantine file that walk dominated every status
        probe; count() must never parse or materialize the entries.
        """
        letters = DeadLetterFile(tmp_path / "dead.jsonl")
        blob = {"padding": "x" * 512}
        for i in range(2000):
            entry = json.dumps(
                {"kind": "malformed", "reason": str(i), "record": blob},
                separators=(",", ":"),
            )
            # Bypass append()'s per-line fsync; we only need the bytes.
            with open(letters.path, "a", encoding="utf-8") as handle:
                handle.write(entry + "\n")
        monkeypatch.setattr(
            DeadLetterFile,
            "entries",
            lambda self: pytest.fail("count() materialized entries()"),
        )
        assert letters.count() == 2000


class TestDescribeDeadLetters:
    def test_describe_counts_without_entries(self, tmp_path, monkeypatch):
        runtime = make_runtime(
            tmp_path, policy=IngestPolicy(on_malformed="quarantine")
        )
        for i in range(3):
            assert runtime.ingest({"stream": "urls", "item": f"bad{i}"}) is False
        monkeypatch.setattr(
            DeadLetterFile,
            "entries",
            lambda self: pytest.fail("describe() materialized entries()"),
        )
        assert runtime.describe()["dead_letters"] == 3
