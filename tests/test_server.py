"""Socket-level tests for the sketch-serving daemon.

Everything here exercises the real TCP path: a :class:`SketchServer`
bound to an ephemeral port, real :class:`repro.server.Client` instances
(or raw sockets, for the framing tests), concurrent reader/writer
clients, and a scripted mid-ingest crash whose recovery must answer
bit-identically to an uninterrupted twin.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.runtime import (
    DegradedError,
    FaultPlan,
    IngestPolicy,
    IngestRuntime,
    LateRecordError,
    MalformedRecordError,
)
from repro.server import Client, ServerError, ServingRuntime, SketchServer
from repro.store import SketchStore, StreamSpec

CHECKPOINT_EVERY = 50
UNIVERSE = 32


def make_store():
    store = SketchStore(width=64, depth=3, join_width=64, seed=11)
    store.create(
        StreamSpec(
            name="urls",
            delta=4,
            universe=UNIVERSE,
            heavy_hitters=True,
            joinable=True,
            quantiles=True,
        )
    )
    store.create(StreamSpec(name="ads", delta=4, joinable=True))
    return store


def make_records(n, start=0):
    return [
        {
            "stream": "urls" if i % 3 else "ads",
            "item": (7 * i) % UNIVERSE,
            "count": 1 + (i % 3),
            "time": i + 1,
        }
        for i in range(start, start + n)
    ]


def start_server(tmp_path, name="srv", faults=None, **serving_kwargs):
    runtime = IngestRuntime.create(
        tmp_path / name,
        make_store(),
        checkpoint_every=CHECKPOINT_EVERY,
        faults=faults,
        sleep=lambda _t: None,
    )
    serving = ServingRuntime(runtime, **serving_kwargs)
    return SketchServer(serving, cutover_poll_s=0.05).start()


@pytest.fixture
def server(tmp_path):
    srv = start_server(tmp_path)
    yield srv
    if not srv.crashed:
        srv.stop()


@pytest.fixture
def client(server):
    host, port = server.address
    with Client(host, port, timeout=10.0) as c:
        yield c


class TestRoundTrips:
    def test_ping(self, client):
        assert client.ping() is True

    def test_ingest_and_query(self, server, client):
        records = make_records(80)
        assert client.ingest_batch(records) == 80
        for raw in make_records(3, start=80):
            assert client.ingest_record(raw) is True
        live = server.serving.runtime
        t = live.clock("urls")
        assert client.point("urls", 7, 0, t) == live.store.point("urls", 7, 0, t)
        assert client.self_join_size("ads") == live.store.self_join_size("ads")
        assert client.window_mass("urls") == live.store.window_mass("urls")
        assert client.heavy_hitters("urls", 0.05) == live.store.heavy_hitters(
            "urls", 0.05
        )

    def test_point_many(self, server, client):
        client.ingest_batch(make_records(60))
        live = server.serving.runtime
        t = live.clock("urls")
        items = [1, 7, 14, 21]
        got = client.point_many("urls", items, windows=[0, t])
        want = [live.store.point("urls", item, 0, t) for item in items]
        assert got == want

    def test_cutover_and_frozen_equals_live(self, server, client):
        client.ingest_batch(make_records(80))
        status = client.cutover()
        # The 0.05 s background ticker may adopt the checkpoint first; the
        # forced cutover then reports a no-op.  Either way the view must
        # now sit at the newest checkpoint.
        assert status["swapped"] is True or "newest checkpoint" in status["reason"]
        view = server.serving.view()
        assert view is not None and view.seq == CHECKPOINT_EVERY
        fc = view.clock("urls")
        for item in range(0, UNIVERSE, 5):
            frozen = client.point("urls", item, 0, fc, mode="frozen")
            live = client.point("urls", item, 0, fc, mode="live")
            assert frozen == live
        hh_frozen = client.heavy_hitters("urls", 0.05, 0, fc, mode="frozen")
        hh_live = client.heavy_hitters("urls", 0.05, 0, fc, mode="live")
        assert hh_frozen == hh_live

    def test_health_describe_fsck(self, client):
        client.ingest_batch(make_records(55))
        client.cutover()  # don't rely on the ticker having fired yet
        health = client.health()
        assert health["state"] == "healthy"
        assert health["serving"]["cutovers"] >= 1
        described = client.describe()
        assert described["applied_seq"] == 55
        assert described["dead_letters"] == 0
        assert described["serving"]["tail_records"] <= 55
        report = client.fsck()
        assert report["clean"] is True and report["recoverable"] is True

    def test_background_ticker_advances_view(self, server, client):
        client.ingest_batch(make_records(60))
        deadline = threading.Event()
        for _ in range(100):
            view = server.serving.view()
            if view is not None and view.seq >= CHECKPOINT_EVERY:
                break
            deadline.wait(0.05)
        view = server.serving.view()
        assert view is not None and view.seq >= CHECKPOINT_EVERY


class TestTypedErrors:
    def test_unknown_stream(self, client):
        with pytest.raises(KeyError, match="nope"):
            client.point("nope", 1)

    def test_unknown_verb(self, client):
        with pytest.raises(ValueError, match="unknown verb"):
            client._call("frobnicate")

    def test_value_error(self, client):
        client.ingest_batch(make_records(10))
        with pytest.raises(ValueError, match="empty window"):
            client.point("urls", 1, 9, 2)

    def test_malformed_and_late_records(self, tmp_path):
        runtime = IngestRuntime.create(
            tmp_path / "strict",
            make_store(),
            checkpoint_every=CHECKPOINT_EVERY,
            policy=IngestPolicy(on_malformed="raise", on_late="raise"),
        )
        server = SketchServer(ServingRuntime(runtime)).start()
        try:
            host, port = server.address
            with Client(host, port) as c:
                with pytest.raises(MalformedRecordError):
                    c.ingest_record({"stream": "urls", "item": "zzz"})
                assert c.ingest("urls", 1, time=5) is True
                with pytest.raises(LateRecordError):
                    c.ingest("urls", 2, time=4)
                # The connection survives typed errors.
                assert c.ping() is True
        finally:
            server.stop()

    def test_degraded_error_passthrough(self, server, client):
        client.ingest_batch(make_records(10))
        server.serving.runtime.monitor.degrade(
            "wal-io", "disk full", recoverable=False
        )
        with pytest.raises(DegradedError) as excinfo:
            client.ingest("urls", 1)
        assert excinfo.value.state.value == "degraded-readonly"
        assert excinfo.value.cause == "wal-io"
        assert "disk full" in excinfo.value.detail
        # Reads keep working through the same connection.
        assert client.point("urls", 7) >= 0.0
        assert client.health()["state"] == "degraded-readonly"


class TestFraming:
    def _raw(self, server, payload: bytes) -> dict:
        host, port = server.address
        with socket.create_connection((host, port), timeout=5.0) as sock:
            sock.sendall(payload)
            reply = sock.makefile("rb").readline()
        return json.loads(reply)

    def test_garbage_line_is_bad_request(self, server):
        reply = self._raw(server, b"this is not json\n")
        assert reply["ok"] is False
        assert reply["error"]["type"] == "bad-request"

    def test_non_object_frame(self, server):
        reply = self._raw(server, b"[1, 2, 3]\n")
        assert reply["ok"] is False
        assert reply["error"]["type"] == "bad-request"

    def test_missing_verb(self, server):
        reply = self._raw(server, b"{}\n")
        assert reply["ok"] is False
        assert reply["error"]["type"] == "bad-request"

    def test_pipelined_requests_matched_by_id(self, server):
        host, port = server.address
        with socket.create_connection((host, port), timeout=5.0) as sock:
            sock.sendall(
                b'{"id": 1, "verb": "ping"}\n'
                b'{"id": 2, "verb": "describe"}\n'
                b'{"id": 3, "verb": "ping"}\n'
            )
            rfile = sock.makefile("rb")
            replies = [json.loads(rfile.readline()) for _ in range(3)]
        assert [r["id"] for r in replies] == [1, 2, 3]
        assert replies[0]["result"] == "pong"
        assert replies[1]["result"]["applied_seq"] == 0

    def test_client_rejects_wrong_id(self, server, monkeypatch):
        host, port = server.address
        c = Client(host, port)
        try:
            c._next_id = 41
            # Skew the expected id after the request is built.
            real_encode = json.dumps

            def skew(obj, **kwargs):
                if isinstance(obj, dict) and obj.get("verb") == "ping":
                    obj = dict(obj, id=999)
                return real_encode(obj, **kwargs)

            monkeypatch.setattr("repro.server.protocol.json.dumps", skew)
            with pytest.raises(ConnectionError):
                c.ping()
        finally:
            c.close()


class TestConcurrency:
    def test_concurrent_readers_and_writer(self, server):
        """One writer + 4 readers hammering the daemon concurrently."""
        host, port = server.address
        n_records = 200
        records = make_records(n_records)
        stop = threading.Event()
        errors: list[BaseException] = []

        def writer():
            try:
                with Client(host, port) as c:
                    for chunk_start in range(0, n_records, 20):
                        c.ingest_batch(records[chunk_start : chunk_start + 20])
            except BaseException as exc:  # noqa: B036  # sketchlint: disable=SL004 — collected and re-asserted on the main thread
                errors.append(exc)
            finally:
                stop.set()

        def reader(item):
            try:
                with Client(host, port) as c:
                    while not stop.is_set():
                        c.point("urls", item)
                        c.self_join_size("ads")
                        c.health()
            except BaseException as exc:  # noqa: B036  # sketchlint: disable=SL004 — collected and re-asserted on the main thread
                errors.append(exc)

        threads = [threading.Thread(target=writer)]
        threads += [
            threading.Thread(target=reader, args=(item,)) for item in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        with Client(host, port) as c:
            assert c.describe()["applied_seq"] == n_records


class TestCrashRecovery:
    def test_simulated_crash_kills_connection_then_recovers(self, tmp_path):
        """kill -9 mid-ingest: the in-flight request dies unanswered and
        a recovered runtime answers bit-identically to an uninterrupted
        twin fed the same records."""
        records = make_records(180)
        crash_at = 77
        server = start_server(
            tmp_path, faults=FaultPlan(crash_after_record=crash_at)
        )
        host, port = server.address
        applied = 0
        crashed = False
        with Client(host, port) as c:
            for raw in records:
                try:
                    assert c.ingest_record(raw) is True
                    applied += 1
                except ConnectionError:
                    crashed = True
                    break
        assert crashed and applied == crash_at - 1
        assert server.crashed is True
        # New connections die unanswered too, like a dead process.
        with pytest.raises((ConnectionError, OSError)):
            Client(host, port, timeout=2.0).ping()

        recovered = IngestRuntime.recover(
            tmp_path / "srv", checkpoint_every=CHECKPOINT_EVERY
        )
        # Unacknowledged tail: re-send everything past applied_seq.
        for raw in records[recovered.applied_seq :]:
            assert recovered.ingest(raw) is True

        twin = IngestRuntime.create(
            tmp_path / "twin", make_store(), checkpoint_every=CHECKPOINT_EVERY
        )
        for raw in records:
            assert twin.ingest(raw) is True

        for stream in ("urls", "ads"):
            assert recovered.clock(stream) == twin.clock(stream)
        t = twin.clock("urls")
        for item in range(UNIVERSE):
            for s, e in [(0, None), (t // 3, 2 * t // 3)]:
                assert recovered.store.point(
                    "urls", item, s, e
                ) == twin.store.point("urls", item, s, e)
        assert recovered.store.heavy_hitters(
            "urls", 0.02
        ) == twin.store.heavy_hitters("urls", 0.02)
        assert recovered.store.self_join_size(
            "ads"
        ) == twin.store.self_join_size("ads")

    def test_restarted_server_serves_recovered_state(self, tmp_path):
        records = make_records(120)
        server = start_server(
            tmp_path, faults=FaultPlan(crash_after_record=90)
        )
        host, port = server.address
        with Client(host, port) as c:
            for raw in records:
                try:
                    c.ingest_record(raw)
                except ConnectionError:
                    break
        recovered = IngestRuntime.recover(
            tmp_path / "srv", checkpoint_every=CHECKPOINT_EVERY
        )
        restarted = SketchServer(ServingRuntime(recovered)).start()
        try:
            host2, port2 = restarted.address
            with Client(host2, port2) as c:
                applied = c.describe()["applied_seq"]
                assert applied == 90  # durable through the crashed record
                for raw in records[applied:]:
                    assert c.ingest_record(raw) is True
                assert c.describe()["applied_seq"] == len(records)
                # The restarted view comes from the recovered checkpoints.
                assert c.cutover()["view_seq"] is not None
        finally:
            restarted.stop()


class TestServerErrorType:
    def test_server_error_round_trip(self):
        from repro.server import protocol

        payload = protocol.error_payload(RuntimeError("boom"))
        assert payload["type"] == "internal"
        with pytest.raises(ServerError, match="boom"):
            protocol.raise_for_error(payload)
