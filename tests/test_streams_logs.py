"""Tests for log-file ingestion (binary WorldCup format and CSV)."""

import pytest

from repro.sketch.exact import ExactFrequency
from repro.streams.logs import (
    STREAMABLE_ATTRIBUTES,
    WorldCupRecord,
    attribute_stream,
    read_csv_stream,
    read_worldcup_log,
    synthesize_worldcup_log,
    write_csv_stream,
    write_worldcup_log,
)
from repro.streams.model import Stream


class TestRecordFormat:
    def test_pack_unpack_roundtrip(self):
        record = WorldCupRecord(
            timestamp=894_000_123,
            client_id=42,
            object_id=9999,
            size=2048,
            method=0,
            status=200,
            doc_type=3,
            server=17,
        )
        assert WorldCupRecord.unpack(record.pack()) == record
        assert len(record.pack()) == 20

    def test_log_roundtrip(self, tmp_path):
        records = synthesize_worldcup_log(500, seed=3)
        path = tmp_path / "day46.log"
        assert write_worldcup_log(records, path) == 500
        assert path.stat().st_size == 500 * 20
        assert list(read_worldcup_log(path)) == records

    def test_truncated_log_rejected(self, tmp_path):
        path = tmp_path / "bad.log"
        path.write_bytes(b"\x00" * 30)  # 1.5 records
        with pytest.raises(ValueError):
            list(read_worldcup_log(path))

    def test_empty_log(self, tmp_path):
        path = tmp_path / "empty.log"
        write_worldcup_log([], path)
        assert list(read_worldcup_log(path)) == []


class TestSynthesis:
    def test_timestamps_non_decreasing(self):
        records = synthesize_worldcup_log(300, seed=4)
        stamps = [r.timestamp for r in records]
        assert stamps == sorted(stamps)

    def test_object_profile_skewed(self):
        records = synthesize_worldcup_log(5000, seed=5)
        exact = ExactFrequency()
        exact.update_many(r.object_id for r in records)
        top500 = sum(freq for _, freq in exact.top_k(500))
        assert top500 > 0.6 * len(records)

    def test_deterministic(self):
        assert synthesize_worldcup_log(100, seed=6) == synthesize_worldcup_log(
            100, seed=6
        )


class TestAttributeStream:
    def test_projection(self):
        records = synthesize_worldcup_log(200, seed=7)
        stream = attribute_stream(records, "object_id")
        assert len(stream) == 200
        assert list(stream.items) == [r.object_id for r in records]
        # Discrete time model: consecutive ticks.
        assert list(stream.times) == list(range(1, 201))

    @pytest.mark.parametrize("attribute", STREAMABLE_ATTRIBUTES)
    def test_all_attributes_streamable(self, attribute):
        records = synthesize_worldcup_log(50, seed=8)
        assert len(attribute_stream(records, attribute)) == 50

    def test_unknown_attribute(self):
        with pytest.raises(ValueError):
            attribute_stream([], "timestamp")


class TestCsv:
    def test_roundtrip(self, tmp_path):
        stream = Stream(items=[5, 6, 5], times=[10, 20, 30])
        path = tmp_path / "log.csv"
        assert write_csv_stream(stream, path) == 3
        loaded = read_csv_stream(path, item_column="item", time_column="time")
        assert list(loaded.items) == [5, 6, 5]
        assert list(loaded.times) == [10, 20, 30]

    def test_default_ticks_without_time_column(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("key\n7\n8\n")
        loaded = read_csv_stream(path, item_column="key")
        assert list(loaded.times) == [1, 2]

    def test_missing_columns(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError):
            read_csv_stream(path, item_column="missing")
        with pytest.raises(ValueError):
            read_csv_stream(path, item_column="a", time_column="missing")
