"""Tests for the epoch manager (Section 5)."""

import pytest

from repro.persistence.epochs import EpochManager


class TestValidation:
    def test_factor_must_exceed_one(self):
        with pytest.raises(ValueError):
            EpochManager(factor=1.0)

    def test_epoch_at_before_observations(self):
        with pytest.raises(ValueError):
            EpochManager().epoch_at(5)


class TestDoublingRule:
    def test_first_observation_starts_epoch(self):
        manager = EpochManager()
        epoch = manager.observe(1, 1.0)
        assert epoch is not None
        assert epoch.index == 0
        assert manager.current is epoch

    def test_epoch_boundaries_on_doubling(self):
        manager = EpochManager(factor=2.0)
        manager.observe(1, 1.0)
        boundaries = []
        for t in range(2, 200):
            if manager.observe(t, float(t)) is not None:
                boundaries.append(t)
        # Norm = t doubles at 2, 4, 8, ... relative to each epoch start.
        assert boundaries == [2, 4, 8, 16, 32, 64, 128]

    def test_epoch_on_halving(self):
        manager = EpochManager(factor=2.0)
        manager.observe(1, 100.0)
        assert manager.observe(2, 60.0) is None
        epoch = manager.observe(3, 50.0)
        assert epoch is not None
        assert epoch.start_norm == 50.0

    def test_logarithmic_epoch_count(self):
        manager = EpochManager()
        for t in range(1, 10_001):
            manager.observe(t, float(t))
        assert len(manager) <= 16  # ~log2(10^4) + 1


class TestLookup:
    def test_epoch_at(self):
        manager = EpochManager()
        manager.observe(10, 1.0)
        manager.observe(20, 2.0)
        manager.observe(40, 4.0)
        assert manager.epoch_at(10).index == 0
        assert manager.epoch_at(19).index == 0
        assert manager.epoch_at(20).index == 1
        assert manager.epoch_at(100).index == 2

    def test_times_before_first_epoch_map_to_first(self):
        manager = EpochManager()
        manager.observe(10, 1.0)
        assert manager.epoch_at(1).index == 0

    def test_start_norm_floor(self):
        manager = EpochManager()
        epoch = manager.observe(1, 0.0)
        assert epoch is not None
        assert epoch.start_norm == 1.0
