"""Tests for the historical (s = 0) heavy-hitter structure (Theorem 5.2)."""

import numpy as np
import pytest

from repro.core.historical_heavy_hitters import HistoricalHeavyHitters
from repro.streams.model import Stream
from repro.streams.truth import GroundTruth


@pytest.fixture(scope="module")
def planted():
    rng = np.random.default_rng(101)
    items = rng.integers(0, 200, size=6000)
    items[::4] = 9  # heavy from the start
    items[3001::6] = 77  # becomes heavy midway
    stream = Stream(items=items, universe=256)
    truth = GroundTruth(stream)
    structure = HistoricalHeavyHitters(
        universe=256, width=256, depth=4, eps=0.02, seed=11
    )
    structure.ingest(stream)
    return stream, truth, structure


class TestValidation:
    def test_universe(self):
        with pytest.raises(ValueError):
            HistoricalHeavyHitters(universe=1, width=4, depth=2, eps=0.1)

    def test_window_queries_rejected(self, planted):
        _, _, structure = planted
        with pytest.raises(ValueError):
            structure.point(1, s=10, t=20)

    def test_phi_and_k_validation(self, planted):
        _, _, structure = planted
        with pytest.raises(ValueError):
            structure.heavy_hitters(0.0)
        with pytest.raises(ValueError):
            structure.top_k(0)

    def test_out_of_universe_item(self, planted):
        _, _, structure = planted
        with pytest.raises(ValueError):
            structure.update(256)


class TestQueries:
    def test_mass_tracks_stream_length(self, planted):
        stream, truth, structure = planted
        for t in (100, 3000, 6000):
            assert structure.mass(t) == pytest.approx(t, rel=0.05)

    def test_heavy_hitters_at_end(self, planted):
        _, truth, structure = planted
        phi = 0.05
        found = structure.heavy_hitters(phi)
        actual = truth.heavy_hitters(phi, 0, 6000)
        assert set(actual) <= set(found)

    def test_heavy_hitters_respect_history(self, planted):
        """Item 77 only becomes heavy in the second half: queries at
        t=3000 must not report it, queries at t=6000 must."""
        _, truth, structure = planted
        phi = 0.05
        early = structure.heavy_hitters(phi, t=3000)
        late = structure.heavy_hitters(phi, t=6000)
        assert 9 in early
        assert 77 not in early
        assert 9 in late
        assert 77 in late

    def test_point_tracks_truth(self, planted):
        _, truth, structure = planted
        for t in (1500, 4500):
            actual = truth.frequency(9, 0, t)
            assert structure.point(9, t=t) == pytest.approx(
                actual, rel=0.2, abs=4 * 0.02 * t + 2
            )

    def test_top_k_over_time(self, planted):
        _, truth, structure = planted
        top_early = [item for item, _ in structure.top_k(1, t=2500)]
        assert top_early == [9]
        top_late = structure.top_k(2, t=6000)
        assert {item for item, _ in top_late} == {9, 77}

    def test_space_sublinear(self, planted):
        stream, _, structure = planted
        assert structure.persistence_words() < 30 * len(stream)
