"""Tests for the dyadic persistent heavy-hitter structure (Section 3.2)."""

import pytest

from repro.core.heavy_hitters import PersistentHeavyHitters
from repro.core.persistent_countmin import PWCCountMin
from repro.streams.generators import zipf_stream
from repro.streams.model import Stream
from repro.streams.truth import GroundTruth


def planted_stream(length=4000, heavy=(3, 17, 42), universe=256, seed=71):
    """A stream where specific items are guaranteed heavy."""
    import numpy as np

    rng = np.random.default_rng(seed)
    items = rng.integers(0, universe, size=length)
    # Plant each heavy item on a sixth of the positions.
    for idx, item in enumerate(heavy):
        items[idx::6] = item
    return Stream(items=items, universe=universe)


@pytest.fixture(scope="module")
def planted():
    stream = planted_stream()
    truth = GroundTruth(stream)
    structure = PersistentHeavyHitters(
        universe=256, width=256, depth=4, delta=8, seed=9
    )
    structure.ingest(stream)
    return stream, truth, structure


class TestValidation:
    def test_universe_bounds(self):
        with pytest.raises(ValueError):
            PersistentHeavyHitters(universe=1, width=4, depth=2, delta=2)
        structure = PersistentHeavyHitters(
            universe=16, width=4, depth=2, delta=2
        )
        with pytest.raises(ValueError):
            structure.update(16)

    def test_phi_range(self, planted):
        _, _, structure = planted
        with pytest.raises(ValueError):
            structure.heavy_hitters(phi=0.0)
        with pytest.raises(ValueError):
            structure.heavy_hitters(phi=1.0)


class TestQueries:
    def test_finds_planted_heavy_hitters(self, planted):
        _, truth, structure = planted
        phi = 0.1
        found = structure.heavy_hitters(phi)
        actual = truth.heavy_hitters(phi)
        assert set(actual) == {3, 17, 42}
        assert set(actual) <= set(found)

    def test_window_heavy_hitters(self, planted):
        _, truth, structure = planted
        s, t = 1000, 3000
        found = structure.heavy_hitters(0.1, s, t)
        actual = truth.heavy_hitters(0.1, s, t)
        missed = set(actual) - set(found)
        assert not missed
        # Precision: nothing wildly below threshold gets returned.
        threshold = 0.05 * truth.window_l1(s, t)
        for item in found:
            assert truth.frequency(item, s, t) >= threshold * 0.5

    def test_estimates_close_to_truth(self, planted):
        _, truth, structure = planted
        found = structure.heavy_hitters(0.1)
        for item, estimate in found.items():
            actual = truth.frequency(item)
            assert estimate == pytest.approx(actual, rel=0.25, abs=30)

    def test_point_query_delegates_to_level0(self, planted):
        _, truth, structure = planted
        assert structure.point(3) == pytest.approx(
            truth.frequency(3), rel=0.2, abs=30
        )

    def test_window_mass(self, planted):
        _, truth, structure = planted
        s, t = 500, 2500
        assert structure.window_mass(s, t) == pytest.approx(
            truth.window_l1(s, t), rel=0.05, abs=20
        )

    def test_no_heavy_hitters_when_threshold_high(self, planted):
        _, _, structure = planted
        assert structure.heavy_hitters(0.9) == {}


class TestVariants:
    def test_pwc_factory(self):
        stream = planted_stream(seed=72)
        truth = GroundTruth(stream)
        structure = PersistentHeavyHitters(
            universe=256,
            width=256,
            depth=4,
            delta=8,
            seed=9,
            sketch_factory=lambda w, d, dl, sd, hashes=None: PWCCountMin(
                width=w, depth=d, delta=dl, seed=sd, hashes=hashes
            ),
        )
        structure.ingest(stream)
        found = structure.heavy_hitters(0.1)
        actual = truth.heavy_hitters(0.1)
        assert set(actual) <= set(found)

    def test_space_scales_with_levels(self):
        stream = zipf_stream(2000, universe=2**10, exponent=2.0, seed=73)
        compacted = Stream(items=stream.items % 1024, universe=1024)
        small = PersistentHeavyHitters(universe=1024, width=256, depth=3, delta=4)
        small.ingest(compacted)
        flat = small._sketches[0]
        # The stack costs more than one level but less than levels x one
        # level's worst case (higher levels aggregate and compress).
        assert small.persistence_words() >= flat.persistence_words()

    def test_max_candidates_cap(self, planted):
        _, truth, structure = planted
        found = structure.heavy_hitters(0.1, max_candidates=2)
        # Cap keeps the strongest candidates.
        assert len(found) <= 2
        assert set(found) <= {3, 17, 42}
