"""Property-based window-query guarantees.

Hypothesis generates arbitrary small streams and windows; the sketches'
answers must respect the theorems' error bounds on *every* one of them —
not just on the benchmark workloads.
"""

from collections import Counter

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.persistent_countmin import PersistentCountMin, PWCCountMin
from repro.store.sharded import ShardedPersistentSketch

streams = st.lists(
    st.integers(min_value=0, max_value=15), min_size=1, max_size=150
)
windows = st.tuples(
    st.integers(min_value=0, max_value=150),
    st.integers(min_value=0, max_value=150),
)


def window_frequency(items, item, s, t):
    return sum(
        1 for tick, value in enumerate(items, start=1)
        if value == item and s < tick <= t
    )


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(items=streams, window=windows, delta=st.integers(1, 10))
def test_theorem_31_bound_on_arbitrary_streams(items, window, delta):
    """With a collision-free width, the only error source is the PLA:
    |estimate - truth| <= 2*delta + step slack, for every window."""
    s, t = sorted(window)
    # Window ends beyond the last update now raise; clamp the draw onto
    # the queryable range (no ticks exist past the end, so truth agrees).
    t = min(t, len(items))
    s = min(s, t)
    sketch = PersistentCountMin(width=4096, depth=3, delta=delta, seed=5)
    for tick, item in enumerate(items, start=1):
        sketch.update(item, time=tick)
    for item in set(items):
        truth = window_frequency(items, item, s, t)
        estimate = sketch.point(item, s, t)
        assert abs(estimate - truth) <= 2 * delta + 2


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(items=streams, window=windows, delta=st.integers(1, 10))
def test_pwc_bound_on_arbitrary_streams(items, window, delta):
    s, t = sorted(window)
    t = min(t, len(items))
    s = min(s, t)
    sketch = PWCCountMin(width=4096, depth=3, delta=delta, seed=5)
    for tick, item in enumerate(items, start=1):
        sketch.update(item, time=tick)
    for item in set(items):
        truth = window_frequency(items, item, s, t)
        assert abs(sketch.point(item, s, t) - truth) <= 2 * delta


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(items=streams, delta=st.integers(1, 8),
       shard_length=st.integers(5, 60))
def test_sharded_consistent_with_unsharded(items, delta, shard_length):
    """Sharding changes error constants (one per overlapped shard) but
    answers must stay within the summed per-shard budgets of truth."""
    sharded = ShardedPersistentSketch(
        shard_length=shard_length, width=4096, depth=3, delta=delta, seed=5
    )
    for tick, item in enumerate(items, start=1):
        sharded.update(item, time=tick)
    m = len(items)
    s, t = m // 4, max(m // 4, 3 * m // 4)
    shards_touched = (t - s) // shard_length + 2
    for item in set(items):
        truth = window_frequency(items, item, s, t)
        estimate = sharded.point(item, s, t)
        assert abs(estimate - truth) <= shards_touched * (2 * delta + 2)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(items=streams)
def test_window_additivity(items):
    """Estimates are additive over adjacent windows (linearity of the
    counter reconstruction): f(s,u] ~ f(s,t] + f(t,u]."""
    sketch = PersistentCountMin(width=4096, depth=3, delta=3, seed=7)
    for tick, item in enumerate(items, start=1):
        sketch.update(item, time=tick)
    m = len(items)
    s, t, u = 0, m // 2, m
    hot = Counter(items).most_common(1)[0][0]
    whole = sketch.point(hot, s, u)
    parts = sketch.point(hot, s, t) + sketch.point(hot, t, u)
    # Identical per-row reconstructions telescope exactly.
    assert abs(whole - parts) <= 1e-6
