"""Crash-recovery property tests: kill-and-recover vs an uninterrupted twin.

The acceptance property (ISSUE 2): killing ingestion at *any* injected
fault point and recovering must yield a runtime whose query answers are
identical to an uninterrupted twin that ingested the same records with
the same checkpoint cadence — including the sampled AMS sketches, whose
RNG state rides along in the snapshot.  The twin is an
:class:`IngestRuntime` (not a bare store) because snapshotting finalizes
open PLA runs, so checkpoint positions shape future segmentation.
"""

import random

import pytest

from repro.core.persistent_countmin import PWCCountMin
from repro.parallel import fork_available, pool_faults
from repro.runtime import (
    FaultPlan,
    IngestRuntime,
    RecoveryError,
    SimulatedCrash,
)
from repro.store import SketchStore, StreamSpec

pytestmark = pytest.mark.faults

UNIVERSE = 64
N_RECORDS = 260
CHECKPOINT_EVERY = 50  # boundaries at records 50, 100, 150, 200, 250


def make_store():
    store = SketchStore(width=64, depth=3, join_width=64, seed=11)
    store.create(
        StreamSpec(
            name="urls",
            delta=4,
            universe=UNIVERSE,
            heavy_hitters=True,
            joinable=True,
            quantiles=True,
        )
    )
    store.create(StreamSpec(name="ads", delta=4, joinable=True))
    return store


def make_pwc_store():
    """Same shape, but the point sketches use PWC (baseline) trackers."""
    store = make_store()
    for name in store.streams():
        state = store._streams[name]
        state.point_sketch = PWCCountMin(
            width=64, depth=3, delta=4, seed=11
        )
    return store


def make_records(n=N_RECORDS):
    rng = random.Random(1234)
    records = []
    for i in range(n):
        records.append(
            {
                "stream": "urls" if i % 3 else "ads",
                "item": rng.randrange(UNIVERSE),
                "count": rng.choice([1, 1, 1, 2, 3]),
            }
        )
    return records


def run_uninterrupted(root, records, store_factory=make_store):
    twin = IngestRuntime.create(
        root / "twin", store_factory(), checkpoint_every=CHECKPOINT_EVERY
    )
    for raw in records:
        assert twin.ingest(raw) is True
    return twin


def crash_and_recover(root, plan, records, store_factory=make_store):
    """Ingest until the scripted crash, recover, re-send the tail.

    Records past ``applied_seq`` were never acknowledged, so re-sending
    them is the client's exactly-once responsibility, not a duplicate.
    """
    runtime = IngestRuntime.create(
        root / "victim",
        store_factory(),
        checkpoint_every=CHECKPOINT_EVERY,
        faults=plan,
        sleep=lambda _t: None,
    )
    crashed = False
    for raw in records:
        try:
            runtime.ingest(raw)
        except SimulatedCrash:
            crashed = True
            break
    assert crashed, "fault plan never fired"
    recovered = IngestRuntime.recover(
        root / "victim", checkpoint_every=CHECKPOINT_EVERY
    )
    assert recovered.applied_seq < len(records)
    for raw in records[recovered.applied_seq:]:
        assert recovered.ingest(raw) is True
    return recovered


def assert_identical_answers(twin, recovered):
    """Bit-identical query answers across every sketch family."""
    for stream in ("urls", "ads"):
        assert recovered.clock(stream) == twin.clock(stream)
    t = twin.clock("urls")
    windows = [(0, None), (t // 3, 2 * t // 3), (t // 2, None)]
    for item in range(0, UNIVERSE, 7):
        for s, e in windows:
            assert recovered.store.point("urls", item, s, e) == twin.store.point(
                "urls", item, s, e
            )
    assert recovered.store.heavy_hitters("urls", 0.05) == twin.store.heavy_hitters(
        "urls", 0.05
    )
    assert recovered.store.top_k("urls", 5) == twin.store.top_k("urls", 5)
    assert recovered.store.quantile("urls", 0.5) == twin.store.quantile(
        "urls", 0.5
    )
    for s, e in windows:
        assert recovered.store.self_join_size(
            "urls", s, e
        ) == twin.store.self_join_size("urls", s, e)
    assert recovered.store.join_size("urls", "ads") == twin.store.join_size(
        "urls", "ads"
    )


# Record-level fault points straddle the checkpoint boundaries (B-1, B,
# B+1 around records 50 and 100) plus an arbitrary mid-interval point.
RECORD_FAULT_POINTS = [49, 50, 51, 100, 101, 130]


class TestCrashAtEveryFaultPoint:
    @pytest.mark.parametrize("at", RECORD_FAULT_POINTS)
    def test_crash_before_wal_append(self, tmp_path, at):
        records = make_records()
        twin = run_uninterrupted(tmp_path, records)
        recovered = crash_and_recover(
            tmp_path, FaultPlan(crash_before_record=at), records
        )
        assert_identical_answers(twin, recovered)

    @pytest.mark.parametrize("at", RECORD_FAULT_POINTS)
    def test_torn_wal_write(self, tmp_path, at):
        records = make_records()
        twin = run_uninterrupted(tmp_path, records)
        recovered = crash_and_recover(
            tmp_path, FaultPlan(torn_write_at_record=at), records
        )
        assert_identical_answers(twin, recovered)

    @pytest.mark.parametrize("at", RECORD_FAULT_POINTS)
    def test_crash_after_durable_before_apply(self, tmp_path, at):
        records = make_records()
        twin = run_uninterrupted(tmp_path, records)
        recovered = crash_and_recover(
            tmp_path, FaultPlan(crash_after_record=at), records
        )
        assert_identical_answers(twin, recovered)

    @pytest.mark.parametrize("at", [1, 3])
    def test_crash_during_checkpoint(self, tmp_path, at):
        records = make_records()
        twin = run_uninterrupted(tmp_path, records)
        recovered = crash_and_recover(
            tmp_path, FaultPlan(crash_at_checkpoint=at), records
        )
        assert_identical_answers(twin, recovered)


class TestTruncatedSnapshotFallback:
    @pytest.mark.parametrize("at", [2, 4])
    def test_falls_back_to_previous_checkpoint(self, tmp_path, at):
        """A truncated committed snapshot must not error: recovery falls
        back to the previous checkpoint and replays a longer WAL tail."""
        records = make_records()
        twin = run_uninterrupted(tmp_path, records)
        recovered = crash_and_recover(
            tmp_path,
            FaultPlan(truncate_snapshot_at_checkpoint=at),
            records,
        )
        # The damaged snapshot covered `at` intervals; falling back one
        # checkpoint forces a replay of at least a full interval.
        assert recovered.stats.replayed >= CHECKPOINT_EVERY
        assert_identical_answers(twin, recovered)


class TestPWCVariant:
    """The recovery protocol is tracker-agnostic: PWC baselines too."""

    @pytest.mark.parametrize(
        "plan",
        [
            FaultPlan(torn_write_at_record=120),
            FaultPlan(crash_at_checkpoint=2),
        ],
        ids=["torn120", "ckpt2"],
    )
    def test_pwc_store_recovers_identically(self, tmp_path, plan):
        records = make_records()
        twin = run_uninterrupted(tmp_path, records, make_pwc_store)
        recovered = crash_and_recover(
            tmp_path, plan, records, make_pwc_store
        )
        assert_identical_answers(twin, recovered)


class TestBatchAndParallelFaultPoints:
    """The same kill-and-recover property, through the other feed paths.

    ``ingest_batch`` frames chunks with one fsync, and ``workers=2``
    routes the apply through the self-healing worker pool — the
    acceptance property must survive both: crash anywhere, recover,
    re-send the unacknowledged tail, and every query answer is
    bit-identical to the scalar uninterrupted twin.
    """

    BATCH = 37  # deliberately coprime with the checkpoint cadence

    def _crash_recover_batched(self, root, plan, records, workers):
        victim = IngestRuntime.create(
            root / "victim",
            make_store(),
            checkpoint_every=CHECKPOINT_EVERY,
            faults=plan,
            sleep=lambda _t: None,
            workers=workers,
        )
        with pytest.raises(SimulatedCrash):
            for lo in range(0, len(records), self.BATCH):
                victim.ingest_batch(records[lo : lo + self.BATCH])
        victim.close()
        recovered = IngestRuntime.recover(
            root / "victim",
            checkpoint_every=CHECKPOINT_EVERY,
            workers=workers,
        )
        durable = recovered.applied_seq
        assert durable < len(records)
        assert recovered.ingest_batch(records[durable:]) == len(records) - durable
        recovered.store.drain_workers()
        return recovered

    @pytest.mark.parametrize("at", [50, 101, 130])
    def test_batch_crash_recovers_to_identical_answers(self, tmp_path, at):
        records = make_records()
        twin = run_uninterrupted(tmp_path, records)
        recovered = self._crash_recover_batched(
            tmp_path, FaultPlan(torn_write_at_record=at), records, workers=1
        )
        assert_identical_answers(twin, recovered)

    @pytest.mark.skipif(not fork_available(), reason="needs os.fork")
    @pytest.mark.parametrize(
        "plan",
        [
            FaultPlan(crash_before_record=101),
            FaultPlan(torn_write_at_record=101),
            FaultPlan(crash_after_record=101),
        ],
        ids=["before101", "torn101", "after101"],
    )
    def test_parallel_batch_crash_recovers_to_identical_answers(
        self, tmp_path, plan
    ):
        records = make_records()
        twin = run_uninterrupted(tmp_path, records)
        recovered = self._crash_recover_batched(
            tmp_path, plan, records, workers=2
        )
        assert_identical_answers(twin, recovered)

    @pytest.mark.skipif(not fork_available(), reason="needs os.fork")
    def test_worker_kill_then_crash_then_recover(self, tmp_path):
        """Compound fault: a pool worker is SIGKILLed (healed in-flight
        by respawn + replay), then the process crashes mid-batch — the
        recovered runtime must still answer bit-identically."""
        records = make_records()
        twin = run_uninterrupted(tmp_path, records)
        plan = FaultPlan(
            crash_after_record=130,
            pool_kill_worker=0,
            pool_kill_at_batch=2,
        )
        with pool_faults(plan):
            recovered = self._crash_recover_batched(
                tmp_path, plan, records, workers=2
            )
        assert_identical_answers(twin, recovered)


class TestRecoverEdgeCases:
    def test_recover_empty_directory_raises(self, tmp_path):
        with pytest.raises(RecoveryError):
            IngestRuntime.recover(tmp_path / "nothing-here")

    def test_recover_clean_shutdown_resumes(self, tmp_path):
        records = make_records(80)
        runtime = IngestRuntime.create(
            tmp_path / "rt", make_store(), checkpoint_every=CHECKPOINT_EVERY
        )
        for raw in records:
            runtime.ingest(raw)
        runtime.close()
        recovered = IngestRuntime.recover(
            tmp_path / "rt", checkpoint_every=CHECKPOINT_EVERY
        )
        assert recovered.applied_seq == 80
        # 80 records, last checkpoint covered 50: 30 replayed.
        assert recovered.stats.replayed == 30
        twin = run_uninterrupted(tmp_path, records)
        assert_identical_answers(twin, recovered)

    def test_create_refuses_existing_runtime(self, tmp_path):
        IngestRuntime.create(tmp_path / "rt", make_store())
        with pytest.raises(FileExistsError):
            IngestRuntime.create(tmp_path / "rt", make_store())

    def test_recovery_revalidates_contracts(self, tmp_path):
        """Recovery validates timelines even with REPRO_CONTRACTS off."""
        from repro.analysis import contracts

        records = make_records(60)
        runtime = IngestRuntime.create(
            tmp_path / "rt", make_store(), checkpoint_every=CHECKPOINT_EVERY
        )
        for raw in records:
            runtime.ingest(raw)
        runtime.close()
        with contracts.enforced(False):
            recovered = IngestRuntime.recover(
                tmp_path / "rt", checkpoint_every=CHECKPOINT_EVERY
            )
        assert recovered.applied_seq == 60
