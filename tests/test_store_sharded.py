"""Tests for time-sharded persistent sketching with retention."""

import pytest

from repro.store.sharded import ShardedPersistentSketch
from repro.streams.generators import zipf_stream
from repro.streams.truth import GroundTruth


@pytest.fixture()
def sharded():
    return ShardedPersistentSketch(
        shard_length=1000, width=512, depth=4, delta=8, seed=3
    )


class TestBasics:
    def test_shard_routing(self, sharded):
        sharded.update(1, time=1)
        sharded.update(1, time=1000)
        sharded.update(1, time=1001)
        assert sharded.shard_count == 2

    def test_invalid_shard_length(self):
        with pytest.raises(ValueError):
            ShardedPersistentSketch(shard_length=0, width=8, depth=2, delta=2)

    def test_point_within_one_shard(self, sharded):
        for t in range(1, 501):
            sharded.update(9, time=t)
        assert sharded.point(9, 0, 500) == pytest.approx(500, abs=20)

    def test_point_across_shards(self):
        stream = zipf_stream(5000, universe=2**14, exponent=2.0, seed=77)
        truth = GroundTruth(stream)
        sharded = ShardedPersistentSketch(
            shard_length=1000, width=1024, depth=5, delta=8, seed=3
        )
        sharded.ingest(stream)
        assert sharded.shard_count == 5
        for s, t in [(0, 5000), (500, 3500), (1000, 2000), (2499, 2501)]:
            for item, freq in truth.top_k(5, s, t):
                estimate = sharded.point(item, s, t)
                # Each overlapped shard contributes up to ~2*delta + eps*L1.
                shards_touched = (t - s) // 1000 + 2
                slack = shards_touched * (2 * 8 + 2) + 0.01 * (t - s)
                assert abs(estimate - freq) <= slack

    def test_empty_window_regions(self, sharded):
        sharded.update(5, time=100)
        sharded.update(5, time=9000)  # shards 0 and 8; 1-7 never created
        assert sharded.point(5, 0, 9000) == pytest.approx(2, abs=2)
        assert sharded.shard_count == 2


class TestRetention:
    def test_drop_before(self, sharded):
        for t in range(1, 5001):
            sharded.update(4, time=t)
        assert sharded.shard_count == 5
        dropped = sharded.drop_before(2000)  # shards 0 and 1 end by 2000
        assert dropped == 2
        assert sharded.shard_count == 3
        # Recent windows still answer.
        assert sharded.point(4, 2000, 5000) == pytest.approx(3000, abs=60)

    def test_query_into_expired_history_raises(self, sharded):
        for t in range(1, 3001):
            sharded.update(4, time=t)
        sharded.drop_before(1000)
        with pytest.raises(ValueError):
            sharded.point(4, 0, 3000)

    def test_ingest_into_expired_shard_raises(self, sharded):
        for t in range(1, 2001):
            sharded.update(4, time=t)
        sharded.drop_before(1000)
        # The sketch clock already rejects old times; the shard check is
        # the backstop for fresh sketches after open().
        with pytest.raises(ValueError):
            sharded.update(4, time=500)

    def test_space_bounded_under_retention(self):
        """Rolling retention keeps total space bounded as time passes."""
        sharded = ShardedPersistentSketch(
            shard_length=500, width=256, depth=3, delta=4, seed=1
        )
        sizes = []
        for t in range(1, 10_001):
            sharded.update(t % 97, time=t)
            if t % 2000 == 0:
                sharded.drop_before(t - 1000)
                sizes.append(sharded.shard_count)
        assert max(sizes) <= 4


class TestShardBoundaries:
    """Satellite: behavior exactly at the k*L / k*L + 1 seams.

    Time t lands in shard (t - 1) // L, so t = k*L is the *last* tick of
    shard k-1 and t = k*L + 1 the *first* tick of shard k.  Off-by-one
    errors here silently double-count or drop boundary updates.
    """

    def test_updates_at_seam_route_to_adjacent_shards(self):
        sharded = ShardedPersistentSketch(
            shard_length=1000, width=512, depth=3, delta=4, seed=3
        )
        sharded.update(7, time=1000)   # last tick of shard 0
        sharded.update(7, time=1001)   # first tick of shard 1
        assert sharded.shard_count == 2
        # Window (999, 1000] sees only the first update, (1000, 1001]
        # only the second, (999, 1001] both.
        assert sharded.point(7, 999, 1000) == pytest.approx(1, abs=0.5)
        assert sharded.point(7, 1000, 1001) == pytest.approx(1, abs=0.5)
        assert sharded.point(7, 999, 1001) == pytest.approx(2, abs=0.5)

    def test_boundary_windows_match_unsharded_truth(self):
        stream = zipf_stream(4000, universe=2**12, exponent=2.0, seed=31)
        truth = GroundTruth(stream)
        sharded = ShardedPersistentSketch(
            shard_length=1000, width=2048, depth=4, delta=2, seed=3
        )
        sharded.ingest(stream)
        item = int(truth.top_k(1, 0, 4000)[0][0])
        for s, t in [(999, 1001), (1000, 1001), (1000, 2000),
                     (1999, 2001), (0, 1000), (3000, 4000)]:
            estimate = sharded.point(item, s, t)
            exact = truth.frequency(item, s, t)
            shards_touched = (t - s) // 1000 + 2
            assert abs(estimate - exact) <= shards_touched * (2 * 2 + 2)

    def test_drop_before_at_seam_keeps_boundary_shard(self):
        sharded = ShardedPersistentSketch(
            shard_length=1000, width=512, depth=3, delta=4, seed=3
        )
        for t in range(1, 3001):
            sharded.update(4, time=t)
        # Cutoff exactly at the seam: shard 0 (times 1..1000) ends at
        # 1000 <= 1000 and expires; shard 1 (ending 2000) must survive.
        assert sharded.drop_before(1000) == 1
        assert sharded.shard_count == 2
        assert sharded.point(4, 1000, 2000) == pytest.approx(1000, abs=30)
        with pytest.raises(ValueError):
            sharded.point(4, 999, 2000)  # reaches one tick into shard 0

    def test_drop_before_one_past_seam_drops_nothing_more(self):
        sharded = ShardedPersistentSketch(
            shard_length=1000, width=512, depth=3, delta=4, seed=3
        )
        for t in range(1, 3001):
            sharded.update(4, time=t)
        # Shard 1 spans (1000, 2000]; a cutoff of 1001 may not expire it.
        assert sharded.drop_before(1001) == 1
        assert sharded.shard_count == 2
        assert sharded.point(4, 1500, 2500) == pytest.approx(1000, abs=30)
