"""Scalar-vs-batch bit-equality of the columnar ingestion pipeline.

The tentpole claim of the batch refactor is that ``ingest_batch`` is
*bit-identical* to a loop of scalar ``update()`` calls for **every**
sketch type — including the sampling-based persistent AMS, whose
Bernoulli draws are pre-drawn from the same seeded generator in scalar
order.  These tests compare a structural fingerprint of the full sketch
state (counters, tracker segments, history lists, epoch bookkeeping,
RNG state) rather than just query answers, under hypothesis-driven
streams and arbitrary chunk boundaries.
"""

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import contracts
from repro.analysis.contracts import ContractViolation
from repro.core.heavy_hitters import PersistentHeavyHitters
from repro.core.historical_ams import HistoricalAMS
from repro.core.historical_countmin import HistoricalCountMin
from repro.core.historical_heavy_hitters import HistoricalHeavyHitters
from repro.core.persistent_ams import PersistentAMS
from repro.core.persistent_countmin import PersistentCountMin, PWCCountMin
from repro.core.pwc_ams import PWCAMS
from repro.hashing import BucketHashFamily, HashConfig, SignHashFamily
from repro.hashing.carter_wegman import MERSENNE_PRIME, PolynomialHash
from repro.hashing.families import IdentityHashFamily
from repro.persistence.sampling import bulk_uniforms
from repro.pla.orourke import _FUSED_MIN, OnlinePLA
from repro.pla.piecewise_constant import OnlinePWC
from repro.sketch.ams import AMSSketch
from repro.sketch.countmin import CountMinSketch
from repro.store.sharded import ShardedPersistentSketch
from repro.streams.model import Stream

# --------------------------------------------------------------------- #
# Deep state fingerprint
# --------------------------------------------------------------------- #


# Memoization caches (hash families) and weakref plumbing are not sketch
# state: the scalar path warms per-item caches the vectorized path never
# touches, by design.  Worker-pool bookkeeping is execution plumbing the
# parallel equality tests compare around (the pool itself holds no
# sketch state once drained).
_NON_STATE_ATTRS = {
    "_cache",
    "__weakref__",
    "_workers",
    "_pool",
    "_pool_stale",
    "_pool_broken",
    # The update-buffer tier is execution plumbing like the pool: a
    # flushed buffer holds no sketch state, only lifetime counters the
    # buffered/unbuffered equality tests compare around.
    "_buffer",
    "_buffer_flushing",
}


def _slot_names(obj):
    names = []
    for klass in type(obj).__mro__:
        names.extend(getattr(klass, "__slots__", ()))
    return names


def fingerprint(obj, _depth=0):
    """Recursively reduce an object graph to comparable plain data.

    Every attribute reachable from the sketch participates — counters,
    tracker segments, history lists, epoch state and RNG state — so two
    equal fingerprints mean bit-identical sketches, not merely sketches
    that happen to answer today's queries alike.
    """
    if _depth > 24:
        raise RuntimeError("fingerprint recursion too deep")
    if isinstance(obj, (int, float, str, bool, type(None))):
        return obj
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return ("ndarray", str(obj.dtype), obj.tolist())
    if isinstance(obj, random.Random):
        return ("rng", obj.getstate())
    if isinstance(obj, (list, tuple)):
        return [fingerprint(x, _depth + 1) for x in obj]
    if isinstance(obj, dict):
        return {
            repr(key): fingerprint(value, _depth + 1)
            for key, value in sorted(obj.items(), key=lambda kv: repr(kv[0]))
        }
    if isinstance(obj, (set, frozenset)):
        return ("set", sorted(repr(x) for x in obj))
    if callable(obj) and not hasattr(obj, "__dict__"):
        return ("callable", getattr(obj, "__qualname__", repr(type(obj))))
    if callable(obj) and isinstance(
        obj, (type(lambda: 0), type(fingerprint))
    ):
        return ("callable", getattr(obj, "__qualname__", "?"))
    state = {}
    for name in _slot_names(obj):
        if name not in _NON_STATE_ATTRS and hasattr(obj, name):
            state[name] = fingerprint(getattr(obj, name), _depth + 1)
    for name, value in vars(obj).items() if hasattr(obj, "__dict__") else ():
        if name in _NON_STATE_ATTRS:
            continue
        if callable(value) and not isinstance(value, random.Random):
            state[name] = ("callable",)
        else:
            state[name] = fingerprint(value, _depth + 1)
    return (type(obj).__name__, state)


# --------------------------------------------------------------------- #
# Stream strategy: bounded turnstile updates with irregular gaps
# --------------------------------------------------------------------- #

update_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=255),  # item (fits HH universes)
        st.sampled_from([1, 1, 1, 2, -1]),  # count (mostly inserts)
        st.integers(min_value=1, max_value=3),  # time gap
    ),
    min_size=1,
    max_size=90,
)


def build_stream(updates):
    """Materialize a valid cash-register-leaning stream."""
    balance: dict[int, int] = {}
    items, counts, times = [], [], []
    time = 0
    for item, count, gap in updates:
        if count < 0 and balance.get(item, 0) <= 0:
            count = 1
        balance[item] = balance.get(item, 0) + count
        time += gap
        items.append(item)
        counts.append(count)
        times.append(time)
    return Stream(
        np.array(items, dtype=np.int64),
        np.array(times, dtype=np.int64),
        np.array(counts, dtype=np.int64),
    )


def scalar_ingest(sketch, stream):
    for t, i, c in zip(
        stream.times.tolist(), stream.items.tolist(), stream.counts.tolist()
    ):
        sketch.update(i, count=c, time=t)


FACTORIES = {
    "PLA_CM": lambda: PersistentCountMin(width=32, depth=3, delta=5, seed=2),
    "PWC_CM": lambda: PWCCountMin(width=32, depth=3, delta=5, seed=2),
    "PWC_AMS": lambda: PWCAMS(width=32, depth=3, delta=5, seed=2),
    "Sample_AMS": lambda: PersistentAMS(
        width=32, depth=3, delta=5, seed=2, sampling_seed=11
    ),
    "Hist_CM": lambda: HistoricalCountMin(width=32, depth=3, eps=0.1, seed=2),
    "Hist_AMS": lambda: HistoricalAMS(
        width=32, depth=2, eps=0.25, seed=2, expected_length=1000
    ),
    "PLA_HH": lambda: PersistentHeavyHitters(
        universe=256, width=32, depth=2, delta=5, seed=2
    ),
    "Hist_HH": lambda: HistoricalHeavyHitters(
        universe=256, width=16, depth=2, eps=0.15, seed=2
    ),
    "Sharded": lambda: ShardedPersistentSketch(
        shard_length=40, width=32, depth=2, delta=5, seed=2
    ),
}


# --------------------------------------------------------------------- #
# The tentpole property: batch == scalar, bit for bit, for every type
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("name", sorted(FACTORIES))
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(updates=update_lists, chunk=st.integers(min_value=1, max_value=41))
def test_batch_bit_identical_to_scalar(name, updates, chunk):
    stream = build_stream(updates)
    sequential = FACTORIES[name]()
    scalar_ingest(sequential, stream)
    batched = FACTORIES[name]()
    batched.ingest(stream, batch_size=chunk)
    assert fingerprint(batched) == fingerprint(sequential)


@pytest.mark.parametrize("name", sorted(FACTORIES))
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(updates=update_lists, data=st.data())
def test_chunk_boundaries_are_invisible(name, updates, data):
    """Splitting one batch at arbitrary points changes nothing."""
    stream = build_stream(updates)
    n = len(stream)
    cuts = sorted(
        data.draw(
            st.sets(st.integers(min_value=1, max_value=max(1, n - 1)), max_size=6)
        )
    )
    whole = FACTORIES[name]()
    whole.ingest_batch(stream.times, stream.items, stream.counts)
    split = FACTORIES[name]()
    for lo, hi in zip([0, *cuts], [*cuts, n]):
        if lo < hi:
            split.ingest_batch(
                stream.times[lo:hi], stream.items[lo:hi], stream.counts[lo:hi]
            )
    assert fingerprint(split) == fingerprint(whole)


# --------------------------------------------------------------------- #
# Batch validation: contracts and clock conflicts, before any state
# --------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "factory", [FACTORIES["PLA_CM"], FACTORIES["Sample_AMS"]]
)
def test_non_monotone_batch_rejected_untouched(factory):
    sketch = factory()
    before = fingerprint(sketch)
    times = np.array([1, 2, 2, 4], dtype=np.int64)
    items = np.array([5, 6, 7, 8], dtype=np.int64)
    with pytest.raises(ContractViolation, match="strictly increasing"):
        sketch.ingest_batch(times, items)
    assert sketch.now == 0
    assert fingerprint(sketch) == before


def test_clock_conflict_rejected_untouched():
    sketch = FACTORIES["PLA_CM"]()
    sketch.ingest_batch([1, 2, 3], [4, 5, 6])
    before = fingerprint(sketch)
    with pytest.raises(ValueError, match="clock is already at"):
        sketch.ingest_batch([3, 4], [7, 8])
    assert fingerprint(sketch) == before


def test_batch_argument_validation():
    sketch = FACTORIES["PLA_CM"]()
    with pytest.raises(ValueError, match="batch_size"):
        sketch.ingest(build_stream([(1, 1, 1)]), batch_size=0)
    with pytest.raises(ValueError, match="equal lengths"):
        sketch.ingest_batch([1, 2], [3])
    sketch.ingest_batch([], [])  # empty batch is a no-op
    assert sketch.now == 0
    sketch.ingest_batch([5, 7], [1, 2])  # counts default to ones
    assert sketch.now == 7
    assert sketch.total == 2


# --------------------------------------------------------------------- #
# Layer 1: vectorized Carter-Wegman hashing
# --------------------------------------------------------------------- #


def test_eval_many_matches_scalar_on_edge_values():
    hash_fn = PolynomialHash(degree=4, rng=random.Random(9))
    edges = [0, 1, 2, 61, MERSENNE_PRIME - 1, MERSENNE_PRIME, 2**62, 2**64 - 1]
    got = hash_fn.eval_many(np.array(edges, dtype=np.uint64))
    assert got.dtype == np.uint64
    assert got.tolist() == [hash_fn(x) for x in edges]


def test_bucket_and_sign_families_vectorize_exactly():
    config = HashConfig(width=37, depth=4, seed=13)
    buckets = BucketHashFamily(config)
    signs = SignHashFamily(config)
    items = np.arange(0, 500, 7, dtype=np.int64)
    cols = buckets.buckets_many(items)
    sgns = signs.signs_many(items)
    assert cols.shape == (4, len(items))
    for idx, item in enumerate(items.tolist()):
        assert tuple(cols[:, idx].tolist()) == buckets.buckets(item)
        assert tuple(sgns[:, idx].tolist()) == signs.signs(item)


def test_identity_family_vector_range_check():
    family = IdentityHashFamily(16, 2)
    out = family.buckets_many(np.array([0, 3, 15], dtype=np.int64))
    assert out.tolist() == [[0, 3, 15], [0, 3, 15]]
    with pytest.raises(ValueError, match="outside identity range"):
        family.buckets_many(np.array([0, 16], dtype=np.int64))


# --------------------------------------------------------------------- #
# Layer 2: ephemeral sketches
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("cls", [CountMinSketch, AMSSketch])
def test_ephemeral_update_many_matches_scalar(cls):
    rng = np.random.default_rng(3)
    items = rng.integers(0, 4096, size=400)
    counts = rng.integers(-2, 5, size=400)
    counts[counts == 0] = 1
    scalar = cls(width=64, depth=4, seed=7)
    for item, count in zip(items.tolist(), counts.tolist()):
        scalar.update(item, count)
    batched = cls(width=64, depth=4, seed=7)
    batched.update_many(items, counts)
    assert batched.counters.tolist() == scalar.counters.tolist()
    assert batched.total == scalar.total


# --------------------------------------------------------------------- #
# Layer 4: persistence primitives
# --------------------------------------------------------------------- #


def test_bulk_uniforms_is_the_scalar_stream():
    reference = random.Random(41)
    expected = [reference.random() for _ in range(257)]
    rng = random.Random(41)
    got = bulk_uniforms(rng, 257)
    assert got.tolist() == expected
    assert rng.getstate() == reference.getstate()
    # Interleaving bulk and scalar draws continues the same stream.
    assert rng.random() == reference.random()
    assert bulk_uniforms(rng, 3).tolist() == [
        reference.random() for _ in range(3)
    ]
    assert bulk_uniforms(rng, 0).tolist() == []


# --------------------------------------------------------------------- #
# The fused OnlinePLA batch path
# --------------------------------------------------------------------- #

pla_steps = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=5),  # time gap
        st.integers(min_value=-6, max_value=9),  # value step
    ),
    min_size=_FUSED_MIN,
    max_size=120,
)


def _pla_columns(steps):
    t, v = 0, 0
    times, values = [], []
    for gap, dv in steps:
        t += gap
        v += dv
        times.append(t)
        values.append(v)
    return (
        np.array(times, dtype=np.int64),
        np.array(values, dtype=np.int64),
    )


@settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    steps=pla_steps,
    delta=st.sampled_from([1.0, 2.0, 5.0, 50.0]),
    data=st.data(),
)
def test_pla_fused_feed_many_matches_scalar(steps, delta, data):
    """The fused vector path leaves bit-identical OnlinePLA state.

    Every internal field participates via the fingerprint: hulls,
    tangent-walk starts, supporting lines, run bookkeeping and emitted
    segments.  Chunk cuts are drawn adversarially so fused windows stop
    and resume at arbitrary run positions.
    """
    times, values = _pla_columns(steps)
    with contracts.enforced(False):
        scalar = OnlinePLA(delta=delta)
        for t, v in zip(times.tolist(), values.tolist()):
            scalar.feed(t, v)
        fused = OnlinePLA(delta=delta)
        pos = 0
        while pos < len(times):
            cut = data.draw(
                st.integers(min_value=1, max_value=len(times) - pos),
                label="cut",
            )
            fused.feed_many(times[pos : pos + cut], values[pos : pos + cut])
            pos += cut
    assert fingerprint(fused) == fingerprint(scalar)


def test_pla_fused_path_engages_on_clean_columns():
    """Integer, strictly-increasing numpy columns take the vector path."""
    times = np.arange(1, 101, dtype=np.int64)
    values = (times * 7) // 3
    with contracts.enforced(False):
        pla = OnlinePLA(delta=5.0)
        assert pla._feed_fused(times, values)
        assert pla._count > 0


def test_pla_fused_declines_unsafe_columns():
    """Guards route float dtypes and unsorted times to the scalar loop."""
    times = np.arange(1, 41, dtype=np.int64)
    values = np.arange(1, 41, dtype=np.int64)
    with contracts.enforced(False):
        assert not OnlinePLA(delta=5.0)._feed_fused(
            times.astype(np.float64), values
        )
        assert not OnlinePLA(delta=5.0)._feed_fused(
            times, values.astype(np.float64)
        )
        shuffled = times.copy()
        shuffled[[3, 4]] = shuffled[[4, 3]]
        assert not OnlinePLA(delta=5.0)._feed_fused(shuffled, values)
        # Fractional delta: the exact-arithmetic argument needs
        # integer-valued hull coordinates.
        assert not OnlinePLA(delta=2.5)._feed_fused(times, values)
        # The declined calls must not have touched any state.
        pla = OnlinePLA(delta=5.0)
        assert not pla._feed_fused(shuffled, values)
        assert fingerprint(pla) == fingerprint(OnlinePLA(delta=5.0))


def test_pla_fused_state_holds_no_numpy_scalars():
    """Recorded state stays plain Python after numpy-column feeding."""
    times = np.arange(1, 301, dtype=np.int64)
    values = (times * times) // 7  # convex: exercises hull churn
    with contracts.enforced(False):
        pla = OnlinePLA(delta=3.0)
        pla.feed_many(times, values)

    def walk(obj, depth=0):
        assert depth < 16
        assert not isinstance(obj, np.generic), repr(obj)
        if isinstance(obj, (list, tuple)):
            for x in obj:
                walk(x, depth + 1)

    walk(pla._hull_a)
    walk(pla._hull_b)
    walk([pla._last_x, pla._first_v, pla._u_slope, pla._u_icept])
    for seg in pla.function.segments:
        walk([seg.t_start, seg.t_end, seg.slope, seg.value_at_start])


def test_pwc_feed_many_fused_path_matches_scalar():
    with contracts.enforced(False):
        scalar = OnlinePWC(delta=2.0, initial_value=0.0)
        fused = OnlinePWC(delta=2.0, initial_value=0.0)
        times = list(range(1, 60))
        values = [float((t * 13) % 17 - 8) for t in times]
        for t, v in zip(times, values):
            scalar.feed(t, v)
        fused.feed_many(times, values)
        assert fused.function._times == scalar.function._times
        assert fused.function._values == scalar.function._values
        assert fused._last_recorded == scalar._last_recorded
