"""Tiny-scale smoke runs of every experiment runner.

The benchmarks exercise the full-scale versions; these tests only verify
that each runner executes end to end, returns the documented structure,
and archives its JSON — cheaply, on reduced workloads.
"""

import pytest

from repro.eval import experiments


@pytest.fixture(autouse=True)
def results_tmpdir(tmp_path, monkeypatch):
    monkeypatch.setattr(
        "repro.eval.reporting.RESULTS_DIR", tmp_path / "results"
    )


TINY = 3000
TINY_DELTAS = (20, 80)


def test_table1():
    result = experiments.run_table1(length=TINY)
    assert len(result["rows"]) == 5


def test_fig1():
    result = experiments.run_fig1(length=TINY, delta=30, days=4)
    assert len(result["rows"]) == 4
    assert len(result["items"]) == 5


def test_fig2():
    result = experiments.run_fig2(length=TINY, deltas=(50,))
    assert len(result["rows"]) == 1


def test_fig3():
    result = experiments.run_fig3("Zipf_3", length=TINY, deltas=TINY_DELTAS)
    assert [row[0] for row in result["rows"]] == list(TINY_DELTAS)


def test_fig4():
    result = experiments.run_fig4("Zipf_3", length=TINY, deltas=TINY_DELTAS)
    assert len(result["rows"]) == 2


def test_fig5():
    result = experiments.run_fig5("Zipf_3", length=TINY, deltas=TINY_DELTAS)
    assert len(result["rows"][0]) == 7


def test_fig6():
    result = experiments.run_fig6("Zipf_3", length=TINY, deltas=(8, 16))
    assert len(result["rows"]) == 2


def test_fig7():
    result = experiments.run_fig7(
        "Zipf_3", length=TINY, deltas=(8,), phi=0.01
    )
    _, pla_p, pla_r, pwc_p, pwc_r = result["rows"][0]
    assert 0 <= min(pla_p, pla_r, pwc_p, pwc_r)
    assert max(pla_p, pla_r, pwc_p, pwc_r) <= 1


def test_fig8():
    result = experiments.run_fig8(
        "Zipf_3", length=TINY, deltas=(8,), phi=0.01
    )
    assert len(result["rows"][0]) == 7


def test_fig9():
    result = experiments.run_fig9("Zipf_3", length=TINY, deltas=(20,))
    assert result["rows"][0][4] > 0  # theory bound present


def test_fig10():
    result = experiments.run_fig10("Zipf_3", length=TINY, deltas=(20,))
    assert result["rows"][0][1] > 0  # sample words


# CLI dispatch and pipeline behaviour are covered in tests/test_cli.py.
