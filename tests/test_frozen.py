"""Frozen columnar query engine: bit-equality with the live path.

``freeze(sketch)`` compiles a finalized persistent sketch into columnar
numpy state (`repro.engine.frozen`).  The speedup is only admissible if
the frozen snapshot answers *exactly* what the live sketch answers, so
every test here asserts ``==`` on floats — bitwise equality, not
approximate closeness.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.heavy_hitters import PersistentHeavyHitters
from repro.core.persistent_ams import PersistentAMS
from repro.core.persistent_countmin import PersistentCountMin, PWCCountMin
from repro.engine import freeze
from repro.engine.frozen import (
    FrozenCountMin,
    FrozenHeavyHitters,
    FrozenShardedSketch,
)
from repro.core.pwc_ams import PWCAMS
from repro.eval.harness import compact_items
from repro.store.sharded import ShardedPersistentSketch
from repro.streams.generators import zipf_stream


@pytest.fixture(scope="module")
def stream():
    return zipf_stream(4000, universe=2**16, exponent=1.6, seed=17)


def _workload(stream, n=250, seed=5):
    """Items (including some never seen) plus random (s, t] windows."""
    rng = np.random.default_rng(seed)
    length = len(stream)
    items = rng.choice(stream.items, size=n).tolist()
    items += [10**9 + i for i in range(8)]  # untracked columns
    ends = rng.integers(0, length + 1, size=(len(items), 2))
    lo, hi = ends.min(axis=1), ends.max(axis=1)
    hi = np.minimum(np.maximum(hi, lo + 1), length)
    lo = np.minimum(lo, hi - 1)
    windows = [(float(s), float(t)) for s, t in zip(lo, hi)]
    return items, windows


def _build(kind, stream, **kw):
    cls = {
        "pla": PersistentCountMin,
        "pwc": PWCCountMin,
        "pwc_ams": PWCAMS,
        "sample": PersistentAMS,
    }[kind]
    if kind == "sample":
        kw.setdefault("independent_copies", 2)
        kw.setdefault("sampling_seed", 11)
    sketch = cls(width=512, depth=5, delta=16.0, seed=7, **kw)
    sketch.ingest(stream)
    return sketch


KINDS = ("pla", "pwc", "pwc_ams", "sample")


class TestBitEquality:
    @pytest.mark.parametrize("kind", KINDS)
    def test_point_many_matches_live(self, stream, kind):
        sketch = _build(kind, stream)
        frozen = freeze(sketch)
        items, windows = _workload(stream)
        live = [sketch.point(i, s, t) for i, (s, t) in zip(items, windows)]
        assert frozen.point_many(items, windows).tolist() == live

    @pytest.mark.parametrize("kind", KINDS)
    def test_point_default_window(self, stream, kind):
        sketch = _build(kind, stream)
        frozen = freeze(sketch)
        for item in set(stream.items[:50].tolist()):
            assert frozen.point(item) == sketch.point(item)

    @pytest.mark.parametrize("kind", KINDS)
    def test_self_join_matches_live(self, stream, kind):
        sketch = _build(kind, stream)
        frozen = freeze(sketch)
        length = len(stream)
        for s, t in [(0, length), (length // 4, 3 * length // 4),
                     (length // 2, length // 2 + 10)]:
            assert frozen.self_join_size(s, t) == sketch.self_join_size(s, t)

    def test_point_many_accepts_arrays_and_broadcast(self, stream):
        sketch = _build("pla", stream)
        frozen = freeze(sketch)
        items, windows = _workload(stream, n=60)
        as_lists = frozen.point_many(items, windows)
        as_arrays = frozen.point_many(
            np.asarray(items, dtype=np.int64),
            np.asarray(windows, dtype=np.float64),
        )
        assert as_lists.tolist() == as_arrays.tolist()
        # A single (s, t) pair broadcasts to every item.
        broadcast = frozen.point_many(items, (100.0, 2000.0))
        for item, estimate in zip(items, broadcast.tolist()):
            assert estimate == sketch.point(item, 100.0, 2000.0)

    def test_empty_batch(self, stream):
        frozen = freeze(_build("pla", stream))
        assert len(frozen.point_many([], [])) == 0

    def test_snapshot_is_isolated_from_further_ingest(self, stream):
        sketch = _build("pla", stream)
        frozen = freeze(sketch)
        before = frozen.point(int(stream.items[0]))
        clock = sketch.now
        for tick in range(1, 200):
            sketch.update(int(stream.items[0]), time=clock + tick)
        assert frozen.point(int(stream.items[0])) == before
        assert frozen.now == clock


class TestFrozenWindows:
    """Window resolution mirrors the live semantics exactly."""

    def test_negative_start_clamped(self, stream):
        sketch = _build("pla", stream)
        frozen = freeze(sketch)
        item = int(stream.items[0])
        assert frozen.point(item, -5.0, 300.0) == sketch.point(item, 0, 300.0)
        batch = frozen.point_many([item], [(-5.0, 300.0)])
        assert batch[0] == sketch.point(item, 0, 300.0)

    def test_end_beyond_snapshot_raises(self, stream):
        frozen = freeze(_build("pla", stream))
        with pytest.raises(ValueError, match="beyond the snapshot clock"):
            frozen.point(1, 0, frozen.now + 1)
        with pytest.raises(ValueError, match="beyond the snapshot clock"):
            frozen.point_many([1], [(0.0, float(frozen.now + 1))])

    def test_inverted_window_raises(self, stream):
        frozen = freeze(_build("pla", stream))
        with pytest.raises(ValueError, match="empty window"):
            frozen.point_many([1], [(200.0, 100.0)])

    def test_window_shape_mismatch_raises(self, stream):
        frozen = freeze(_build("pla", stream))
        with pytest.raises(ValueError, match="expected 2"):
            frozen.point_many([1, 2], [(0.0, 10.0)])


class TestLiveWindowEdges:
    """Satellite: the live ``_resolve_window`` clamp and extrapolation
    guard, for every persistent sketch type."""

    @pytest.mark.parametrize("kind", KINDS)
    def test_negative_start_clamps_to_zero(self, stream, kind):
        sketch = _build(kind, stream)
        item = int(stream.items[0])
        assert sketch.point(item, -7, 500) == sketch.point(item, 0, 500)

    @pytest.mark.parametrize("kind", KINDS)
    def test_future_end_raises(self, stream, kind):
        sketch = _build(kind, stream)
        with pytest.raises(ValueError, match="beyond the last update"):
            sketch.point(int(stream.items[0]), 0, sketch.now + 1)


class TestFrozenHeavyHitters:
    def test_heavy_hitters_match_live(self, stream):
        compact = compact_items(stream)
        live = PersistentHeavyHitters(
            universe=compact.universe, width=256, depth=3, delta=16.0, seed=7
        )
        live.ingest(compact)
        frozen = freeze(live)
        assert isinstance(frozen, FrozenHeavyHitters)
        length = len(compact)
        for phi in (0.01, 0.05, 0.2):
            for s, t in [(0, length), (length // 4, 3 * length // 4)]:
                assert (
                    frozen.heavy_hitters(phi, s, t)
                    == live.heavy_hitters(phi, s, t)
                )
                assert frozen.window_mass(s, t) == live.window_mass(s, t)

    def test_point_delegates_to_leaf_sketch(self, stream):
        compact = compact_items(stream)
        live = PersistentHeavyHitters(
            universe=compact.universe, width=256, depth=3, delta=16.0, seed=7
        )
        live.ingest(compact)
        frozen = freeze(live)
        for item in range(5):
            assert frozen.point(item, 10, 2000) == live.point(item, 10, 2000)


class TestFrozenSharded:
    def _store(self, stream):
        store = ShardedPersistentSketch(
            shard_length=1000, width=512, depth=3, delta=8.0, seed=3
        )
        for tick, item in enumerate(stream.items.tolist(), start=1):
            store.update(item, time=tick)
        return store

    def test_matches_live_across_boundaries(self, stream):
        store = self._store(stream)
        frozen = freeze(store)
        assert isinstance(frozen, FrozenShardedSketch)
        assert frozen.shard_count == store.shard_count
        items, windows = _workload(stream, n=120)
        # Windows that pinch the k*L / k*L + 1 boundaries exactly.
        items += [int(stream.items[0])] * 4
        windows += [(999.0, 1001.0), (1000.0, 1001.0),
                    (999.0, 1000.0), (2000.0, 3000.0)]
        live = [store.point(i, s, t) for i, (s, t) in zip(items, windows)]
        assert frozen.point_many(items, windows).tolist() == live

    def test_expired_window_raises_like_live(self, stream):
        store = self._store(stream)
        store.drop_before(2000)
        frozen = freeze(store)
        with pytest.raises(ValueError, match="expired shards"):
            frozen.point_many([1], [(500.0, 3000.0)])
        with pytest.raises(ValueError, match="expired shards"):
            store.point(1, 500, 3000)
        # Windows entirely within retained shards still match live.
        items, windows = _workload(stream, n=80, seed=9)
        windows = [(max(s, 2000.0), max(t, 2001.0)) for s, t in windows]
        live = [store.point(i, s, t) for i, (s, t) in zip(items, windows)]
        assert frozen.point_many(items, windows).tolist() == live


class TestFreezeDispatch:
    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError, match="does not support"):
            freeze(object())

    def test_method_on_sketch(self, stream):
        sketch = _build("pla", stream)
        frozen = sketch.freeze()
        assert isinstance(frozen, FrozenCountMin)
        item = int(stream.items[0])
        assert frozen.point(item, 5, 500) == sketch.point(item, 5, 500)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    items=st.lists(st.integers(0, 15), min_size=1, max_size=120),
    window=st.tuples(st.integers(0, 120), st.integers(0, 120)),
    delta=st.integers(1, 8),
)
def test_frozen_equals_live_on_arbitrary_streams(items, window, delta):
    """Hypothesis: frozen answers are bitwise identical to live on every
    stream, item and window it can generate."""
    s, t = sorted(window)
    t = min(t, len(items))
    s = min(s, t)
    sketch = PersistentCountMin(width=64, depth=3, delta=delta, seed=5)
    for tick, item in enumerate(items, start=1):
        sketch.update(item, time=tick)
    frozen = freeze(sketch)
    probes = sorted(set(items)) + [99]
    live = [sketch.point(item, s, t) for item in probes]
    frz = frozen.point_many(probes, (float(s), float(t))).tolist()
    assert frz == live
    assert frozen.self_join_size(s, t) == sketch.self_join_size(s, t)
