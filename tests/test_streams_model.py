"""Tests for the stream model."""

import numpy as np
import pytest

from repro.streams.model import Stream, Update


class TestStream:
    def test_default_times_are_consecutive(self):
        stream = Stream(items=[5, 6, 7])
        assert list(stream.times) == [1, 2, 3]
        assert stream.end_time == 3

    def test_rejects_non_increasing_times(self):
        with pytest.raises(ValueError):
            Stream(items=[1, 2], times=[5, 5])
        with pytest.raises(ValueError):
            Stream(items=[1, 2], times=[5, 4])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            Stream(items=[1, 2], times=[1])
        with pytest.raises(ValueError):
            Stream(items=[1, 2], counts=[1])

    def test_iteration_yields_updates(self, tiny_stream):
        updates = list(tiny_stream)
        assert updates[0] == Update(time=1, item=1, count=1)
        assert len(updates) == 10

    def test_cash_register_detection(self):
        assert Stream(items=[1, 2]).is_cash_register
        turnstile = Stream(items=[1, 1], counts=[1, -1])
        assert not turnstile.is_cash_register

    def test_prefix(self, tiny_stream):
        prefix = tiny_stream.prefix(4)
        assert len(prefix) == 4
        assert list(prefix.items) == [1, 2, 1, 3]
        assert prefix.universe == tiny_stream.universe

    def test_from_updates_roundtrip(self, tiny_stream):
        rebuilt = Stream.from_updates(iter(tiny_stream), universe=8)
        assert np.array_equal(rebuilt.items, tiny_stream.items)
        assert np.array_equal(rebuilt.times, tiny_stream.times)

    def test_empty_stream(self):
        stream = Stream(items=[])
        assert len(stream) == 0
        assert stream.end_time == 0
        assert list(stream) == []


class TestUpdate:
    def test_defaults(self):
        update = Update(time=3, item=9)
        assert update.count == 1

    def test_frozen(self):
        update = Update(time=1, item=2)
        with pytest.raises(AttributeError):
            update.item = 5  # type: ignore[misc]
