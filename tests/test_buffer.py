"""The two-stage update buffer: equality, windows, coalescing, freeze.

The tentpole contracts of :mod:`repro.core.buffer`:

* **exact mode is bit-identical** — a buffered sketch, however its
  stream was chunked and however often queries forced early flushes,
  fingerprints equal to an unbuffered twin, for every sketch type;
* **flush boundaries are chunking-invariant** — window-full flushes
  land at exact multiples of the window in absorbed-record count, no
  matter how callers sliced the stream (the property WAL replay needs);
* **coalesce mode stays a valid stream** — merged flushes keep
  distinct, sorted times, preserve net mass exactly, and track the
  per-item absorbed mass that bounds the widened error;
* **freeze/query boundaries are exact** — freezing mid-window flushes
  first, so frozen answers equal live answers at the same horizon in
  both modes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.buffer import DEFAULT_WINDOW, UpdateBuffer
from repro.persistence.tracker import PLATracker, YoungPLATracker
from tests.test_batch_ingest import (
    FACTORIES,
    build_stream,
    fingerprint,
    update_lists,
)

# --------------------------------------------------------------------- #
# UpdateBuffer unit behaviour
# --------------------------------------------------------------------- #


def _collecting_apply(log):
    def apply(times, items, counts):
        log.append(
            (times.tolist(), items.tolist(), counts.tolist())
        )

    return apply


def _columns(n, start_time=1):
    times = np.arange(start_time, start_time + n, dtype=np.int64)
    items = np.arange(n, dtype=np.int64) % 7
    counts = np.ones(n, dtype=np.int64)
    return times, items, counts


def test_window_validation():
    with pytest.raises(ValueError):
        UpdateBuffer(window=0)
    with pytest.raises(ValueError):
        UpdateBuffer(mode="lossy")
    assert UpdateBuffer().window == DEFAULT_WINDOW


def test_window_full_flushes_at_exact_multiples():
    log = []
    buffer = UpdateBuffer(window=4)
    times, items, counts = _columns(10)
    buffer.absorb(times, items, counts, _collecting_apply(log))
    # 10 records through window 4: flushes at 4 and 8, 2 pending.
    assert [len(flush[0]) for flush in log] == [4, 4]
    assert len(buffer) == 2
    assert buffer.stats()["absorbed"] == 10
    assert buffer.stats()["fed"] == 8


def test_flush_boundaries_are_chunking_invariant():
    times, items, counts = _columns(23)
    flat = []
    whole = UpdateBuffer(window=5)
    whole.absorb(times, items, counts, _collecting_apply(flat))
    for cuts in ([3], [1, 2, 9, 17], list(range(1, 23))):
        log = []
        split = UpdateBuffer(window=5)
        apply = _collecting_apply(log)
        for lo, hi in zip([0, *cuts], [*cuts, 23]):
            split.absorb(times[lo:hi], items[lo:hi], counts[lo:hi], apply)
        assert log == flat
        assert len(split) == len(whole)


def test_scalar_and_array_absorption_interleave_in_order():
    log = []
    buffer = UpdateBuffer(window=100)
    apply = _collecting_apply(log)
    buffer.absorb_scalar(1, 10, 2, apply)
    times = np.array([2, 3], dtype=np.int64)
    buffer.absorb(times, times * 10, times * 0 + 1, apply)
    buffer.absorb_scalar(4, 40, 1, apply)
    buffer.flush(apply)
    assert log == [([1, 2, 3, 4], [10, 20, 30, 40], [2, 1, 1, 1])]
    buffer.flush(apply)  # empty flush is a no-op
    assert len(log) == 1


def test_coalesce_merges_to_net_count_at_last_touch():
    log = []
    buffer = UpdateBuffer(window=100, mode="coalesce")
    times = np.array([1, 2, 3, 4, 5], dtype=np.int64)
    items = np.array([7, 9, 7, 9, 7], dtype=np.int64)
    counts = np.array([2, 1, -1, 3, 4], dtype=np.int64)
    buffer.absorb(times, items, counts, _collecting_apply(log))
    buffer.flush(_collecting_apply(log))
    (flushed_times, flushed_items, flushed_counts) = log[0]
    # One update per item, at its last touch, with the exact net count.
    assert flushed_items == [9, 7]
    assert flushed_times == [4, 5]
    assert flushed_counts == [4, 5]
    # Times stay distinct and sorted: a valid batch for the planners.
    assert flushed_times == sorted(set(flushed_times))
    # Per-item absorbed mass bounds the widened error window.
    assert buffer.max_item_mass == 2 + 1 + 4  # item 7: |2| + |-1| + |4|
    assert buffer.stats()["coalesced_away"] == 3


def test_coalesce_keeps_net_zero_items():
    log = []
    buffer = UpdateBuffer(window=100, mode="coalesce")
    times = np.array([1, 2], dtype=np.int64)
    items = np.array([5, 5], dtype=np.int64)
    counts = np.array([3, -3], dtype=np.int64)
    buffer.absorb(times, items, counts, _collecting_apply(log))
    buffer.flush(_collecting_apply(log))
    # The touched counter still records a (count 0) update at the
    # flush, mirroring the scalar path's count-0 semantics.
    assert log == [([2], [5], [0])]


# --------------------------------------------------------------------- #
# Exact mode == unbuffered, bit for bit, for every sketch type
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("name", sorted(FACTORIES))
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    updates=update_lists,
    window=st.integers(min_value=1, max_value=48),
    chunk=st.integers(min_value=1, max_value=41),
)
def test_exact_buffered_bit_identical_to_unbuffered(
    name, updates, window, chunk
):
    stream = build_stream(updates)
    plain = FACTORIES[name]()
    plain.ingest(stream, batch_size=chunk)
    buffered = FACTORIES[name]()
    buffered.configure_buffer(window=window, mode="exact")
    buffered.ingest(stream, batch_size=chunk)
    buffered.flush_buffer()
    assert fingerprint(buffered) == fingerprint(plain)
    assert buffered.buffer_stats()["absorbed"] == len(stream)


@pytest.mark.parametrize("name", sorted(FACTORIES))
@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(updates=update_lists, data=st.data())
def test_exact_mode_query_driven_flushes_are_invisible(name, updates, data):
    """Mid-stream queries force early flushes; exact state is unmoved."""
    stream = build_stream(updates)
    n = len(stream)
    cut = data.draw(st.integers(min_value=1, max_value=n))
    plain = FACTORIES[name]()
    plain.ingest_batch(stream.times, stream.items, stream.counts)
    buffered = FACTORIES[name]()
    buffered.configure_buffer(window=max(2, n), mode="exact")
    buffered.ingest_batch(
        stream.times[:cut], stream.items[:cut], stream.counts[:cut]
    )
    probe = int(stream.items[0])
    mid = buffered.point(probe)  # flushes the staged prefix
    assert mid == mid  # a real float came back
    if cut < n:
        buffered.ingest_batch(
            stream.times[cut:], stream.items[cut:], stream.counts[cut:]
        )
    buffered.flush_buffer()
    assert fingerprint(buffered) == fingerprint(plain)


# --------------------------------------------------------------------- #
# Freeze-tick boundary exactness: frozen == live at the same horizon
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("mode", ["exact", "coalesce"])
@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(updates=update_lists, window=st.integers(min_value=2, max_value=64))
def test_freeze_mid_window_flushes_and_matches_live(updates, window, mode):
    stream = build_stream(updates)
    sketch = FACTORIES["PLA_CM"]()
    sketch.configure_buffer(window=window, mode=mode)
    sketch.ingest_batch(stream.times, stream.items, stream.counts)
    frozen = sketch.freeze()
    # The freeze flushed whatever the window still staged ...
    assert len(sketch._buffer) == 0
    # ... so estimates at the flush boundary are never widened: frozen
    # and live agree exactly, in the lossy mode too.
    for item in sorted(set(stream.items.tolist())):
        assert frozen.point(item) == sketch.point(item)


@pytest.mark.parametrize("mode", ["exact", "coalesce"])
def test_serialization_flushes_the_buffer(mode):
    import pickle

    sketch = FACTORIES["PLA_CM"]()
    sketch.configure_buffer(window=1000, mode=mode)
    for t in range(1, 40):
        sketch.update(t % 5, count=1, time=t)
    assert len(sketch._buffer) > 0
    clone = pickle.loads(pickle.dumps(sketch))
    assert len(sketch._buffer) == 0  # __getstate__ drained it
    assert clone.point(3) == sketch.point(3)


# --------------------------------------------------------------------- #
# Coalesce mode: mass preservation and the documented envelope
# --------------------------------------------------------------------- #


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(updates=update_lists, window=st.integers(min_value=2, max_value=32))
def test_coalesce_preserves_net_mass_and_final_counters(updates, window):
    stream = build_stream(updates)
    exact = FACTORIES["PLA_CM"]()
    exact.ingest_batch(stream.times, stream.items, stream.counts)
    lossy = FACTORIES["PLA_CM"]()
    lossy.configure_buffer(window=window, mode="coalesce")
    lossy.ingest_batch(stream.times, stream.items, stream.counts)
    lossy.flush_buffer()
    # Net counts are merged with exact integer arithmetic: the final
    # counter arrays agree exactly, whatever was coalesced away.
    assert lossy._counters == exact._counters
    assert lossy.total == exact.total
    stats = lossy.buffer_stats()
    assert stats["absorbed"] == len(stream)
    assert stats["fed"] + stats["coalesced_away"] == stats["absorbed"]
    # The envelope never understates a window's heaviest item.
    assert stats["max_item_mass"] <= int(np.abs(stream.counts).sum())


# --------------------------------------------------------------------- #
# YoungPLATracker: the slim first-touch tier behind the buffer
# --------------------------------------------------------------------- #


@settings(max_examples=30, deadline=None)
@given(
    steps=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=4),  # time gap
            st.integers(min_value=-3, max_value=5),  # value delta
        ),
        min_size=0,
        max_size=12,
    ),
    split=st.integers(min_value=0, max_value=12),
)
def test_young_tracker_answers_match_eager(steps, split):
    """Scalar feeds, fused batch feeds, or both: young == eager."""
    times, values = [], []
    t, v = 0, 0
    for gap, dv in steps:
        t += gap
        v += dv
        times.append(t)
        values.append(v)
    eager = PLATracker(delta=2.0)
    young = YoungPLATracker(delta=2.0)
    head = min(split, len(times))
    for k in range(head):
        eager.feed(times[k], values[k])
        young.feed(times[k], values[k])
    if head < len(times):
        tail_t = np.array(times[head:], dtype=np.int64)
        tail_v = np.array(values[head:], dtype=np.int64)
        eager.feed_many(tail_t, tail_v)
        young.feed_many(tail_t, tail_v)
    probes = [0, *times, (times[-1] + 1) if times else 1]
    for probe in probes:
        assert young.value_at(probe) == eager.value_at(probe)
    assert young.words() == eager.words()
    assert young.segment_count() == eager.segment_count()
    eager.finalize()
    young.finalize()
    for ours, theirs in zip(young.export_arrays(), eager.export_arrays()):
        np.testing.assert_array_equal(ours, theirs)


def test_young_tracker_single_touch_is_free():
    young = YoungPLATracker(delta=2.0)
    young.feed(5, 3)
    # One touch stays in the slim staging slot: no PLA, no words.
    assert not hasattr(young, "_pla")
    assert young.words() == 0
    assert young.value_at(4) == 0.0  # sketchlint: disable=SL002 — the staged step answers exactly, no arithmetic involved
    assert young.value_at(5) == 3
    assert young.value_at(100) == 3
    assert young.initial_value == 0.0  # sketchlint: disable=SL002 — stored verbatim, compared verbatim
