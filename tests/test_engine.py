"""Tests for the vectorized bulk-ingest engine."""

import time

import numpy as np
import pytest

from repro.core.historical_countmin import HistoricalCountMin
from repro.core.persistent_ams import PersistentAMS
from repro.core.persistent_countmin import PersistentCountMin, PWCCountMin
from repro.core.pwc_ams import PWCAMS
from repro.engine import batch_hash_columns, batch_ingest
from repro.streams.generators import turnstile_stream, zipf_stream
from repro.streams.truth import GroundTruth


@pytest.fixture(scope="module")
def stream():
    return zipf_stream(5000, universe=2**16, exponent=1.8, seed=141)


def scalar_ingest(sketch, stream):
    """Reference baseline: one ``update()`` call per record.

    ``ingest()`` itself routes through the batch planner now, so the
    scalar loop is spelled out wherever a test needs the pre-columnar
    behaviour as its baseline.
    """
    for time_, item, count in zip(
        stream.times.tolist(), stream.items.tolist(), stream.counts.tolist()
    ):
        sketch.update(item, count=count, time=time_)


class TestHashColumns:
    def test_matches_per_item_hashing(self, stream):
        sketch = PersistentCountMin(width=512, depth=4, delta=10, seed=3)
        columns = batch_hash_columns(sketch.hashes, np.asarray(stream.items))
        for idx in range(0, len(stream), 531):
            expected = sketch.hashes.buckets(int(stream.items[idx]))
            assert tuple(columns[idx]) == expected


class TestDeterministicEquivalence:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: PersistentCountMin(width=256, depth=4, delta=10, seed=2),
            lambda: PWCCountMin(width=256, depth=4, delta=10, seed=2),
            lambda: PWCAMS(width=256, depth=4, delta=10, seed=2),
        ],
        ids=["PLA", "PWC_CM", "PWC_AMS"],
    )
    def test_bit_identical_to_sequential(self, factory, stream):
        sequential = factory()
        scalar_ingest(sequential, stream)
        batched = factory()
        batch_ingest(batched, stream)
        assert batched.now == sequential.now
        assert batched.total == sequential.total
        assert batched._counters == sequential._counters
        assert batched.persistence_words() == sequential.persistence_words()
        truth = GroundTruth(stream)
        for item, _ in truth.top_k(25):
            for s, t in [(0, 5000), (1000, 4000), (4900, 5000)]:
                assert batched.point(item, s, t) == sequential.point(item, s, t)

    def test_turnstile_equivalence(self):
        stream = turnstile_stream(2000, universe=128, seed=9)
        sequential = PersistentCountMin(width=256, depth=3, delta=5, seed=1)
        batched = PersistentCountMin(width=256, depth=3, delta=5, seed=1)
        scalar_ingest(sequential, stream)
        batch_ingest(batched, stream)
        assert batched._counters == sequential._counters
        assert batched.persistence_words() == sequential.persistence_words()


class TestSampleEquivalence:
    def test_bit_identical_sampling(self, stream):
        """Batch-built Sample sketches are *bit-identical* to scalar ones.

        The batch path pre-draws the Bernoulli acceptances from the same
        seeded ``random.Random`` stream in scalar order (see
        ``repro.persistence.sampling.bulk_uniforms``), so the sampled
        histories — not just their distribution — coincide exactly.
        """
        truth = GroundTruth(stream)
        s, t = 1000, 4000
        actual = truth.self_join_size(s, t)
        sequential = PersistentAMS(width=512, depth=5, delta=10, seed=2)
        scalar_ingest(sequential, stream)
        batched = PersistentAMS(width=512, depth=5, delta=10, seed=2)
        batch_ingest(batched, stream)
        assert batched._components == sequential._components
        assert batched.now == sequential.now
        assert batched._rng.getstate() == sequential._rng.getstate()
        for sketch in (sequential, batched):
            assert sketch.self_join_size(s, t) == pytest.approx(
                actual, rel=0.15
            )
        assert batched.persistence_words() == sequential.persistence_words()
        assert batched.self_join_size(s, t) == sequential.self_join_size(s, t)

    def test_deterministic_given_seed(self, stream):
        a = PersistentAMS(width=128, depth=3, delta=8, seed=4, sampling_seed=7)
        b = PersistentAMS(width=128, depth=3, delta=8, seed=4, sampling_seed=7)
        batch_ingest(a, stream)
        batch_ingest(b, stream)
        assert a.persistence_words() == b.persistence_words()
        assert a.self_join_size(0, 5000) == b.self_join_size(0, 5000)


class TestEdgesAndFallback:
    def test_empty_stream(self):
        sketch = PersistentCountMin(width=16, depth=2, delta=4)
        batch_ingest(sketch, zipf_stream(0))
        assert sketch.now == 0

    def test_clock_conflict_rejected(self, stream):
        sketch = PersistentCountMin(width=16, depth=2, delta=4)
        batch_ingest(sketch, stream)
        with pytest.raises(ValueError):
            batch_ingest(sketch, stream)  # same times again

    def test_sequential_then_batch(self, stream):
        sketch = PersistentCountMin(width=256, depth=3, delta=8, seed=1)
        half = len(stream) // 2
        scalar_ingest(sketch, stream.prefix(half))
        from repro.streams.model import Stream

        rest = Stream(
            stream.items[half:], stream.times[half:], stream.counts[half:]
        )
        batch_ingest(sketch, rest)
        reference = PersistentCountMin(width=256, depth=3, delta=8, seed=1)
        scalar_ingest(reference, stream)
        assert sketch._counters == reference._counters
        assert sketch.persistence_words() == reference.persistence_words()

    def test_historical_sketch_batch(self, stream):
        sketch = HistoricalCountMin(width=128, depth=3, eps=0.05, seed=1)
        batch_ingest(sketch, stream.prefix(500))
        assert sketch.now == 500
        reference = HistoricalCountMin(width=128, depth=3, eps=0.05, seed=1)
        scalar_ingest(reference, stream.prefix(500))
        assert sketch._epochs.current.index == reference._epochs.current.index
        assert sketch.persistence_words() == reference.persistence_words()


class TestShuffledFeedContracts:
    """Satellite: a mis-ordered feed must be rejected on *both* ingest
    paths.  The batch path is the dangerous one — it records sampled-AMS
    offers via ``force_sample``, which deliberately bypasses the
    ``@monotone_timestamps`` contract — so ``batch_ingest`` has to
    reject a shuffled feed before any state is touched."""

    def _shuffled(self, n=500, seed=3):
        stream = zipf_stream(n, universe=2**12, exponent=1.5, seed=7)
        rng = np.random.default_rng(seed)
        # Stream validates monotone times at construction; a shuffled
        # feed can only arise via in-place mutation (or a buggy duck-
        # typed source), which is exactly what the batch guard catches.
        rng.shuffle(stream.times)
        return stream

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: PersistentCountMin(width=256, depth=3, delta=8, seed=3),
            lambda: PersistentAMS(width=256, depth=3, delta=8, seed=3),
        ],
    )
    def test_batch_ingest_rejects_shuffled_feed(self, factory):
        from repro.analysis.contracts import ContractViolation

        sketch = factory()
        with pytest.raises(ContractViolation, match="strictly increasing"):
            batch_ingest(sketch, self._shuffled())
        assert sketch.now == 0  # nothing ingested

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: PersistentCountMin(width=256, depth=3, delta=8, seed=3),
            lambda: PersistentAMS(width=256, depth=3, delta=8, seed=3),
        ],
    )
    def test_sequential_ingest_rejects_shuffled_feed(self, factory):
        sketch = factory()
        stream = self._shuffled()
        with pytest.raises(ValueError, match="strictly increasing"):
            for time_, item, count in zip(
                stream.times.tolist(),
                stream.items.tolist(),
                stream.counts.tolist(),
            ):
                sketch.update(item, count=count, time=time_)


class TestSpeed:
    def test_batch_is_faster(self):
        """The columnar plan must clearly beat the scalar update loop;
        typically several-fold, require a clear win."""
        stream = zipf_stream(30_000, universe=2**16, exponent=1.5, seed=5)

        start = time.perf_counter()
        sequential = PersistentAMS(width=1024, depth=5, delta=20, seed=3)
        scalar_ingest(sequential, stream)
        sequential_time = time.perf_counter() - start

        start = time.perf_counter()
        batched = PersistentAMS(width=1024, depth=5, delta=20, seed=3)
        batch_ingest(batched, stream)
        batch_time = time.perf_counter() - start

        assert batched._components == sequential._components
        assert batch_time < sequential_time / 1.3
