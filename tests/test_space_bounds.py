"""Empirical validation of the paper's space theorems.

The appendix proofs (martingale / optional stopping machinery) are
analysis, not system; these tests check their *conclusions* on synthetic
streams drawn from the random stream model of Definition 3.1.
"""

import numpy as np
import pytest

from repro.core.historical_countmin import HistoricalCountMin
from repro.core.persistent_ams import PersistentAMS
from repro.core.persistent_countmin import PersistentCountMin
from repro.pla.orourke import OnlinePLA
from repro.streams.generators import uniform_stream, zipf_stream


def pla_segments_for_walk(m: int, p: float, delta: float, seed: int) -> int:
    """Segments to track one counter hit with probability p per tick."""
    rng = np.random.default_rng(seed)
    pla = OnlinePLA(delta=delta)
    v = 0
    hits = rng.random(m) < p
    for t in np.flatnonzero(hits):
        v += 1
        pla.feed(int(t) + 1, float(v))
    return len(pla.finalize())


class TestTheorem33:
    """PLA space is O(m / Delta^2) in the random stream model."""

    def test_quadratic_delta_scaling(self):
        """Doubling Delta should cut segments ~4x (allowing noise)."""
        m, p = 200_000, 0.5
        seg_small = sum(
            pla_segments_for_walk(m, p, delta=6.0, seed=s) for s in range(3)
        )
        seg_large = sum(
            pla_segments_for_walk(m, p, delta=12.0, seed=s) for s in range(3)
        )
        assert seg_small > 0
        # Expect ~4x; require clearly super-linear improvement (> 2.5x).
        assert seg_small >= 2.5 * seg_large

    def test_far_below_worst_case(self):
        """On a random stream, total PLA segments are << m / Delta."""
        stream = uniform_stream(20_000, universe=64, seed=5)
        sketch = PersistentCountMin(width=64, depth=3, delta=20, seed=1)
        sketch.ingest(stream)
        sketch.finalize()
        worst_case_words = 3 * sketch.depth * len(stream) / sketch.delta
        assert sketch.persistence_words() < worst_case_words / 2


class TestSampleSpace:
    """Sample space is Theta(m / Delta) regardless of distribution."""

    @pytest.mark.parametrize("make", [
        lambda: uniform_stream(20_000, universe=512, seed=6),
        lambda: zipf_stream(20_000, exponent=3.0, seed=6),
    ])
    def test_matches_expectation(self, make):
        stream = make()
        delta = 25
        sketch = PersistentAMS(
            width=256, depth=4, delta=delta, seed=2, independent_copies=1
        )
        sketch.ingest(stream)
        expected_words = 2 * sketch.depth * len(stream) / delta
        assert sketch.persistence_words() == pytest.approx(
            expected_words, rel=0.2
        )


class TestTheorem53:
    """Historical CM space is O(1/eps^2) in the random stream model —
    crucially, roughly independent of the stream length."""

    def test_space_grows_sublinearly_with_m(self):
        sizes = []
        for m in (4000, 16000):
            stream = uniform_stream(m, universe=256, seed=7)
            sketch = HistoricalCountMin(width=256, depth=3, eps=0.05, seed=3)
            sketch.ingest(stream)
            sizes.append(sketch.persistence_words())
        # 4x the stream should cost far less than 4x the space.
        assert sizes[1] < 2.5 * sizes[0]
