"""Tests for evaluation metrics and theory curves."""

import math

import pytest

from repro.eval.metrics import (
    mean_absolute_error,
    precision_recall,
    relative_error,
)
from repro.eval import theory


class TestMetrics:
    def test_mean_absolute_error(self):
        assert mean_absolute_error([1.0, 2.0], [2.0, 0.0]) == 1.5

    def test_mae_validation(self):
        with pytest.raises(ValueError):
            mean_absolute_error([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            mean_absolute_error([], [])

    def test_relative_error(self):
        assert relative_error(110, 100) == pytest.approx(0.1)
        assert relative_error(90, 100) == pytest.approx(0.1)
        with pytest.raises(ValueError):
            relative_error(1, 0)

    def test_precision_recall(self):
        precision, recall = precision_recall([1, 2, 3], [2, 3, 4, 5])
        assert precision == pytest.approx(2 / 3)
        assert recall == pytest.approx(0.5)

    def test_precision_recall_empty_sets(self):
        assert precision_recall([], []) == (1.0, 1.0)
        assert precision_recall([1], []) == (0.0, 1.0)
        assert precision_recall([], [1]) == (1.0, 0.0)


class TestTheory:
    def test_sample_theory_words(self):
        assert theory.sample_theory_words(1000, depth=5, delta=10) == 1000.0
        assert theory.sample_theory_words(
            1000, depth=5, delta=10, copies=2
        ) == 2000.0

    def test_worst_cases_ordering(self):
        # PLA worst case (3 words/seg) > PWC worst case (2 words/rec).
        assert theory.pla_worst_case_words(1000, 5, 10) > (
            theory.pwc_worst_case_words(1000, 5, 10)
        )

    def test_random_model_scaling(self):
        assert theory.pla_random_model_segments(1000, 10) == pytest.approx(10.0)

    def test_error_bounds_monotone_in_delta(self):
        small = theory.countmin_point_error_bound(0.01, 5, 1000)
        large = theory.countmin_point_error_bound(0.01, 50, 1000)
        assert small < large
        assert theory.ams_point_error_bound(0.1, 5, 100) == pytest.approx(15.0)

    def test_join_error_bound_symmetry(self):
        bound_fg = theory.ams_join_error_bound(0.1, 5, 7, 100, 200)
        bound_gf = theory.ams_join_error_bound(0.1, 7, 5, 200, 100)
        assert bound_fg == pytest.approx(bound_gf)

    def test_selfjoin_theory_validation(self):
        with pytest.raises(ValueError):
            theory.sample_theory_selfjoin_error(10, 0.1, 0)
        value = theory.sample_theory_selfjoin_error(10, 0.1, 10_000)
        assert value == pytest.approx(0.1 * (1 + 100 / (0.01 * 10_000)))

    def test_eps_helpers(self):
        assert theory.eps_for_countmin_width(2048) == pytest.approx(
            math.e / 2048
        )
        assert theory.eps_for_ams_width(1024) == pytest.approx(2 / 32)
