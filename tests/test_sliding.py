"""Tests for sliding-window views over persistent sketches."""

import numpy as np
import pytest

from repro.core.heavy_hitters import PersistentHeavyHitters
from repro.core.persistent_ams import PersistentAMS
from repro.core.persistent_countmin import PersistentCountMin
from repro.core.sliding import SlidingWindowView
from repro.streams.model import Stream
from repro.streams.truth import GroundTruth


@pytest.fixture(scope="module")
def ingested():
    rng = np.random.default_rng(121)
    items = rng.integers(0, 64, size=4000)
    items[2000:] = np.where(
        rng.random(2000) < 0.4, 7, items[2000:]
    )  # item 7 surges late
    stream = Stream(items=items, universe=64)
    truth = GroundTruth(stream)
    sketch = PersistentCountMin(width=512, depth=4, delta=6)
    sketch.ingest(stream)
    return stream, truth, sketch


class TestPoint:
    def test_current_window(self, ingested):
        _, truth, sketch = ingested
        view = SlidingWindowView(sketch, window=1000)
        actual = truth.frequency(7, 3000, 4000)
        assert view.point(7) == pytest.approx(actual, abs=20)

    def test_past_window_positions(self, ingested):
        """The capability sliding-window sketches lack: asking about a
        window position that has already slid past."""
        _, truth, sketch = ingested
        view = SlidingWindowView(sketch, window=1000)
        actual_early = truth.frequency(7, 500, 1500)
        actual_late = truth.frequency(7, 3000, 4000)
        assert view.point(7, at=1500) == pytest.approx(actual_early, abs=20)
        assert view.point(7, at=4000) == pytest.approx(actual_late, abs=20)
        assert view.point(7, at=4000) > 3 * view.point(7, at=1500)

    def test_window_clamps_at_stream_start(self, ingested):
        _, truth, sketch = ingested
        view = SlidingWindowView(sketch, window=10_000)
        assert view.point(7, at=500) == pytest.approx(
            truth.frequency(7, 0, 500), abs=15
        )

    def test_window_validation(self, ingested):
        _, _, sketch = ingested
        with pytest.raises(ValueError):
            SlidingWindowView(sketch, window=0)


class TestBackendDispatch:
    def test_heavy_hitters_backend(self):
        rng = np.random.default_rng(5)
        items = rng.integers(0, 64, size=2000)
        items[::3] = 9
        hh = PersistentHeavyHitters(universe=64, width=64, depth=3, delta=5)
        hh.ingest(Stream(items=items, universe=64))
        view = SlidingWindowView(hh, window=500)
        assert 9 in view.heavy_hitters(0.2)

    def test_heavy_hitters_wrong_backend(self, ingested):
        _, _, sketch = ingested
        view = SlidingWindowView(sketch, window=100)
        with pytest.raises(TypeError):
            view.heavy_hitters(0.1)

    def test_self_join_backend(self):
        ams = PersistentAMS(width=256, depth=4, delta=4)
        for t in range(1, 1001):
            ams.update(t % 11, time=t)
        view = SlidingWindowView(ams, window=400)
        # ~36 occurrences per item in the window: F2 ~ 11 * 36^2.
        assert view.self_join_size() == pytest.approx(
            11 * (400 / 11) ** 2, rel=0.4
        )

    def test_self_join_wrong_backend(self, ingested):
        _, _, sketch = ingested
        view = SlidingWindowView(sketch, window=100)
        # PersistentCountMin *does* expose self_join_size (CM-style), so
        # this dispatches fine; use the HH structure for the failure case.
        hh = PersistentHeavyHitters(universe=64, width=64, depth=3, delta=5)
        hh.update(1)
        bad_view = SlidingWindowView(hh, window=100)
        with pytest.raises(TypeError):
            bad_view.self_join_size()
