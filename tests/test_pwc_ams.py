"""Tests for the PWC_AMS baseline."""

import math

import pytest

from repro.core.pwc_ams import PWCAMS
from repro.streams.generators import zipf_stream
from repro.streams.truth import GroundTruth


@pytest.fixture(scope="module")
def ingested():
    stream = zipf_stream(6000, universe=2**18, exponent=2.0, seed=41)
    truth = GroundTruth(stream)
    sketch = PWCAMS(width=1024, depth=5, delta=10, seed=5)
    sketch.ingest(stream)
    return stream, truth, sketch


class TestPoint:
    def test_point_error_bound(self, ingested):
        _, truth, sketch = ingested
        s, t = 1200, 4800
        eps = 2.0 / math.sqrt(sketch.width)
        l2 = math.sqrt(truth.self_join_size(s, t))
        bound = 4 * eps * l2 + 2 * sketch.delta
        for item, freq in truth.top_k(20, s, t):
            assert abs(sketch.point(item, s, t) - freq) <= bound

    def test_untouched_counter_reads_zero(self, ingested):
        _, _, sketch = ingested
        assert sketch.counter_at(0, 0, 100) in (0.0, sketch.counter_at(0, 0, 100))


class TestSelfJoin:
    def test_bias_grows_with_delta(self):
        """The deterministic bias the paper's Section 4.2 describes:
        at large delta the PWC self-join error is substantial on a
        spread-out stream, because every counter is under-recorded."""
        from repro.streams.generators import uniform_stream

        stream = uniform_stream(5000, universe=1000, seed=42)
        truth = GroundTruth(stream)
        s, t = 1000, 4000
        actual = truth.self_join_size(s, t)
        small = PWCAMS(width=512, depth=5, delta=2, seed=5)
        large = PWCAMS(width=512, depth=5, delta=500, seed=5)
        small.ingest(stream)
        large.ingest(stream)
        small_err = abs(small.self_join_size(s, t) - actual) / actual
        large_err = abs(large.self_join_size(s, t) - actual) / actual
        assert small_err < large_err
        assert large_err > 0.5  # records nothing: estimate collapses

    def test_join_requires_shared_config(self):
        a = PWCAMS(width=64, depth=3, delta=4, seed=1)
        b = PWCAMS(width=64, depth=3, delta=4, seed=2)
        with pytest.raises(ValueError):
            a.join_size(b)

    def test_join_between_streams(self):
        a = PWCAMS(width=512, depth=5, delta=2, seed=7)
        b = PWCAMS(width=512, depth=5, delta=2, seed=7)
        for item in [1] * 50 + [2] * 30:
            a.update(item)
        for item in [1] * 20 + [3] * 10:
            b.update(item)
        estimate = a.join_size(b, 0, max(a.now, b.now))
        assert estimate == pytest.approx(50 * 20, rel=0.3)


class TestAccounting:
    def test_space_cliff(self):
        """Counters that never exceed delta cost nothing (Figure 3b)."""
        sketch = PWCAMS(width=256, depth=4, delta=1000, seed=5)
        for item in range(200):  # every counter stays at +-1
            sketch.update(item)
        assert sketch.persistence_words() == 0

    def test_words_positive_when_recording(self, ingested):
        _, _, sketch = ingested
        assert sketch.persistence_words() > 0
        assert sketch.ephemeral_words() == 1024 * 5

    def test_name(self):
        assert PWCAMS.name == "PWC_AMS"
