"""Tests for the epoch-adaptive historical Count-Min sketch (Section 5.1)."""

import pytest

from repro.core.historical_countmin import HistoricalCountMin
from repro.core.persistent_countmin import PersistentCountMin
from repro.streams.generators import zipf_stream
from repro.streams.truth import GroundTruth


@pytest.fixture(scope="module")
def ingested():
    stream = zipf_stream(8000, universe=2**20, exponent=2.0, seed=51)
    truth = GroundTruth(stream)
    sketch = HistoricalCountMin(width=1024, depth=5, eps=0.02, seed=6)
    sketch.ingest(stream)
    return stream, truth, sketch


class TestValidation:
    def test_eps_range(self):
        with pytest.raises(ValueError):
            HistoricalCountMin(width=16, depth=2, eps=0.0)
        with pytest.raises(ValueError):
            HistoricalCountMin(width=16, depth=2, eps=1.0)

    def test_window_queries_rejected(self, ingested):
        _, _, sketch = ingested
        with pytest.raises(ValueError):
            sketch.point(1, s=10, t=20)

    def test_empty_sketch_returns_zero(self):
        sketch = HistoricalCountMin(width=16, depth=2, eps=0.1)
        assert sketch.point(1, t=0) == 0.0


class TestAccuracy:
    def test_relative_error_at_many_times(self, ingested):
        """Theorem 5.1: error <= eps * ||f_t||_1 at every query time —
        no additive term, unlike the general-window sketch."""
        _, truth, sketch = ingested
        eps = sketch.eps
        for t in (50, 200, 1000, 3000, 6000, 8000):
            # ||f_t||_1 = t in the cash-register model.
            # The epoch delta is eps * norm(epoch start) ~ eps * t / 2,
            # plus the CM collision term; allow the theorem's constants.
            bound = 4 * eps * t + 2
            for item, freq in truth.top_k(15, 0, t):
                estimate = sketch.point(item, t=t)
                assert abs(estimate - freq) <= bound

    def test_untouched_item_near_zero(self, ingested):
        _, _, sketch = ingested
        estimate = sketch.point(2**19 + 999, t=8000)
        assert abs(estimate) <= 4 * sketch.eps * 8000 + 2

    def test_frozen_counter_reads_from_earlier_epoch(self):
        """An item touched only early keeps its value in later epochs."""
        sketch = HistoricalCountMin(width=256, depth=3, eps=0.05)
        for t in range(1, 11):
            sketch.update(7, time=t)  # ten early updates of item 7
        for t in range(11, 2001):
            sketch.update(900 + (t % 50), time=t)  # other traffic
        estimate = sketch.point(7, t=2000)
        assert estimate == pytest.approx(10, abs=4 * 0.05 * 2000 + 2)


class TestEpochs:
    def test_epoch_count_logarithmic(self, ingested):
        stream, _, sketch = ingested
        assert 5 <= sketch.epoch_count() <= 20

    def test_space_comparable_to_fixed_delta(self, ingested):
        """Theorem 5.3: O(1/eps^2) expected space in the random stream
        model — in particular, not linear in the stream."""
        stream, _, sketch = ingested
        assert sketch.persistence_words() < len(stream)

    def test_ephemeral_words(self, ingested):
        _, _, sketch = ingested
        assert sketch.ephemeral_words() == 1024 * 5


class TestAgainstGeneralSketch:
    def test_tighter_error_for_early_times(self):
        """For early historical queries the adaptive sketch beats a
        general-window sketch whose delta was sized for the full stream."""
        stream = zipf_stream(8000, universe=2**20, exponent=2.0, seed=52)
        truth = GroundTruth(stream)
        fixed_delta = 0.02 * len(stream)  # what s=0-agnostic tuning gives
        general = PersistentCountMin(width=1024, depth=5, delta=fixed_delta, seed=6)
        adaptive = HistoricalCountMin(width=1024, depth=5, eps=0.02, seed=6)
        general.ingest(stream)
        adaptive.ingest(stream)
        t = 400  # early time: fixed delta = 160 swamps the counts
        errors_general, errors_adaptive = [], []
        for item, freq in truth.top_k(10, 0, t):
            errors_general.append(abs(general.point(item, 0, t) - freq))
            errors_adaptive.append(abs(adaptive.point(item, t=t) - freq))
        assert sum(errors_adaptive) <= sum(errors_general) + 1e-9
