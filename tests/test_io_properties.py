"""Property-based serialization round trips.

Hypothesis drives random streams, shapes and deltas through save/load
and asserts answer preservation — the kind of fuzzing a storage format
needs before anyone trusts it with an archive.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.persistent_ams import PersistentAMS
from repro.core.persistent_countmin import PersistentCountMin, PWCCountMin
from repro.io import from_dict, to_dict

small_streams = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=40),  # item
        st.sampled_from([1, 1, 1, -1]),  # count (mostly inserts)
    ),
    min_size=1,
    max_size=120,
)

shapes = st.tuples(
    st.integers(min_value=4, max_value=64),  # width
    st.integers(min_value=1, max_value=4),  # depth
    st.integers(min_value=1, max_value=20),  # delta
)


def ingest_updates(sketch, updates):
    balance: dict[int, int] = {}
    time = 0
    for item, count in updates:
        # Keep frequencies non-negative (the paper's turnstile model).
        if count < 0 and balance.get(item, 0) <= 0:
            count = 1
        balance[item] = balance.get(item, 0) + count
        time += 1
        sketch.update(item, count, time)
    return time


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(updates=small_streams, shape=shapes)
def test_countmin_roundtrip_preserves_answers(updates, shape):
    width, depth, delta = shape
    sketch = PersistentCountMin(width=width, depth=depth, delta=delta, seed=3)
    end = ingest_updates(sketch, updates)
    restored = from_dict(to_dict(sketch))
    for item in {item for item, _ in updates}:
        for s, t in [(0, end), (end // 2, end)]:
            assert restored.point(item, s, t) == sketch.point(item, s, t)
    assert restored.persistence_words() == sketch.persistence_words()


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(updates=small_streams, shape=shapes)
def test_pwc_roundtrip_preserves_answers(updates, shape):
    width, depth, delta = shape
    sketch = PWCCountMin(width=width, depth=depth, delta=delta, seed=3)
    end = ingest_updates(sketch, updates)
    restored = from_dict(to_dict(sketch))
    for item in {item for item, _ in updates}:
        assert restored.point(item, 0, end) == sketch.point(item, 0, end)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(updates=small_streams, shape=shapes)
def test_ams_roundtrip_preserves_answers(updates, shape):
    width, depth, delta = shape
    sketch = PersistentAMS(
        width=width, depth=depth, delta=max(delta, 1), seed=3
    )
    end = ingest_updates(sketch, updates)
    restored = from_dict(to_dict(sketch))
    for item in {item for item, _ in updates}:
        assert restored.point(item, 0, end) == sketch.point(item, 0, end)
    assert restored.self_join_size(0, end) == sketch.self_join_size(0, end)
