"""Tests for the fractional-cascading query path of the persistent AMS."""

import pytest

from repro.core.join import make_ams_pair
from repro.core.persistent_ams import PersistentAMS
from repro.streams.generators import zipf_stream
from repro.streams.truth import GroundTruth


@pytest.fixture(scope="module")
def sketch_and_truth():
    stream = zipf_stream(6000, universe=2**18, exponent=1.5, seed=71)
    sketch = PersistentAMS(width=512, depth=5, delta=15, seed=8)
    sketch.ingest(stream)
    return sketch, GroundTruth(stream)


class TestEquivalence:
    def test_self_join_identical_with_and_without_timeline(
        self, sketch_and_truth
    ):
        """The cascading path is an optimization: answers are identical
        to the binary-search path, bit for bit."""
        sketch, _ = sketch_and_truth
        windows = [(0, 6000), (1200, 4800), (5000, 6000), (0, 1)]
        baseline = [sketch.self_join_size(s, t) for s, t in windows]
        sketch.build_timeline()
        accelerated = [sketch.self_join_size(s, t) for s, t in windows]
        assert accelerated == baseline

    def test_join_identical_with_timeline(self):
        stream_f = zipf_stream(3000, universe=2**16, exponent=1.5, seed=72)
        stream_g = zipf_stream(3000, universe=2**16, exponent=1.5, seed=72)
        f, g = make_ams_pair(width=512, depth=4, delta_f=10, seed=9)
        f.ingest(stream_f)
        g.ingest(stream_g)
        windows = [(0, 3000), (500, 2500)]
        baseline = [f.join_size(g, s, t) for s, t in windows]
        f.build_timeline()
        g.build_timeline()
        accelerated = [f.join_size(g, s, t) for s, t in windows]
        assert accelerated == baseline

    def test_stale_timeline_falls_back(self, sketch_and_truth):
        sketch, _ = sketch_and_truth
        sketch.build_timeline()
        assert sketch._timeline_fresh()
        sketch.update(12345)
        assert not sketch._timeline_fresh()
        # Query still answers correctly via the fallback path.
        value = sketch.self_join_size(0, sketch.now)
        assert value > 0

    def test_rebuild_after_updates(self, sketch_and_truth):
        sketch, _ = sketch_and_truth
        sketch.build_timeline()
        assert sketch._timeline_fresh()
