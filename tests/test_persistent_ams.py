"""Tests for the sampling-based persistent AMS sketch (Section 4)."""

import math

import pytest

from repro.core.join import make_ams_pair, window_join_size
from repro.core.persistent_ams import PersistentAMS
from repro.streams.generators import turnstile_stream, zipf_stream
from repro.streams.truth import GroundTruth


@pytest.fixture(scope="module")
def ingested():
    stream = zipf_stream(8000, universe=2**20, exponent=2.0, seed=31)
    truth = GroundTruth(stream)
    sketch = PersistentAMS(width=1024, depth=5, delta=10, seed=4)
    sketch.ingest(stream)
    return stream, truth, sketch


class TestValidation:
    def test_delta_below_one_rejected(self):
        with pytest.raises(ValueError):
            PersistentAMS(width=16, depth=2, delta=0.5)

    def test_copies_validation(self):
        with pytest.raises(ValueError):
            PersistentAMS(width=16, depth=2, delta=4, independent_copies=0)

    def test_self_join_requires_two_copies(self):
        sketch = PersistentAMS(width=16, depth=2, delta=4, independent_copies=1)
        sketch.update(1)
        with pytest.raises(ValueError):
            sketch.self_join_size(0, 1)


class TestPointQueries:
    def test_point_error_bound(self, ingested):
        _, truth, sketch = ingested
        eps = 2.0 / math.sqrt(sketch.width)
        for s, t in [(0, 8000), (2000, 6000)]:
            l2 = math.sqrt(truth.self_join_size(s, t))
            # Theorem 4.1 is per-query with constant probability; the
            # constant-factor slack covers the variance of the median.
            bound = 4 * (eps * l2 + 2 * sketch.delta)
            for item, freq in truth.top_k(20, s, t):
                assert abs(sketch.point(item, s, t) - freq) <= bound

    def test_point_before_any_updates_is_zero(self, ingested):
        _, _, sketch = ingested
        assert sketch.point(12345, 0, 0) == 0.0


class TestSelfJoin:
    def test_self_join_accuracy(self, ingested):
        _, truth, sketch = ingested
        for s, t in [(0, 8000), (1600, 4800), (4000, 8000)]:
            actual = truth.self_join_size(s, t)
            estimate = sketch.self_join_size(s, t)
            eps = 2.0 / math.sqrt(sketch.width)
            bound = 4 * eps * (actual + (sketch.delta / eps) ** 2)
            assert abs(estimate - actual) <= bound

    def test_unbiasedness_across_seeds(self):
        """The compensated estimator is unbiased: errors average out over
        independent sampling seeds (the property PWC lacks)."""
        stream = zipf_stream(3000, universe=2**18, exponent=2.0, seed=33)
        truth = GroundTruth(stream)
        s, t = 600, 2400
        actual = truth.self_join_size(s, t)
        estimates = []
        for seed in range(12):
            sketch = PersistentAMS(
                width=1024, depth=5, delta=20, seed=4, sampling_seed=seed
            )
            sketch.ingest(stream)
            estimates.append(sketch.self_join_size(s, t))
        mean = sum(estimates) / len(estimates)
        spread = max(estimates) - min(estimates)
        # The mean is much closer to truth than the per-run spread.
        assert abs(mean - actual) <= max(spread, 0.05 * actual)


class TestJoin:
    def test_join_between_two_streams(self):
        # Two streams over the same hot keys with different mixes.
        stream_f = zipf_stream(4000, universe=2**16, exponent=2.0, seed=35)
        stream_g = zipf_stream(4000, universe=2**16, exponent=2.0, seed=35)
        truth_f, truth_g = GroundTruth(stream_f), GroundTruth(stream_g)
        sketch_f, sketch_g = make_ams_pair(
            width=1024, depth=5, delta_f=10, seed=6
        )
        sketch_f.ingest(stream_f)
        sketch_g.ingest(stream_g)
        s, t = 800, 3200
        actual = truth_f.join_size(truth_g, s, t)
        estimate = sketch_f.join_size(sketch_g, s, t)
        eps = 2.0 / math.sqrt(1024)
        bound = 4 * eps * math.sqrt(
            (truth_f.self_join_size(s, t) + (10 / eps) ** 2)
            * (truth_g.self_join_size(s, t) + (10 / eps) ** 2)
        )
        assert abs(estimate - actual) <= bound

    def test_join_requires_shared_hashes(self):
        a = PersistentAMS(width=64, depth=3, delta=4, seed=1)
        b = PersistentAMS(width=64, depth=3, delta=4, seed=2)
        with pytest.raises(ValueError):
            a.join_size(b)

    def test_window_join_size_helper(self):
        sketch_f, sketch_g = make_ams_pair(width=256, depth=3, delta_f=4, seed=9)
        for item in [1, 2, 3]:
            sketch_f.update(item)
        for item in [2, 3, 4]:
            sketch_g.update(item)
        result = window_join_size(sketch_f, sketch_g, 0, 3, l2_f=2.0, l2_g=2.0)
        assert result.window == (0, 3)
        assert result.error_bound > 0
        result_nobound = window_join_size(sketch_f, sketch_g)
        assert math.isnan(result_nobound.error_bound)


class TestAccounting:
    def test_words_match_expectation(self, ingested):
        stream, _, sketch = ingested
        expected = 2 * 2 * sketch.depth * len(stream) * sketch.probability
        assert sketch.persistence_words() == pytest.approx(expected, rel=0.15)

    def test_single_copy_halves_space(self):
        stream = zipf_stream(4000, universe=2**16, seed=36)
        two = PersistentAMS(width=256, depth=4, delta=10, independent_copies=2)
        one = PersistentAMS(width=256, depth=4, delta=10, independent_copies=1)
        two.ingest(stream)
        one.ingest(stream)
        assert one.persistence_words() < two.persistence_words()

    def test_ephemeral_words(self, ingested):
        _, _, sketch = ingested
        assert sketch.ephemeral_words() == 2 * 1024 * 5


class TestTurnstile:
    def test_deletions_route_to_components(self):
        stream = turnstile_stream(2000, universe=64, seed=37)
        truth = GroundTruth(stream)
        sketch = PersistentAMS(width=512, depth=5, delta=4, seed=2)
        sketch.ingest(stream)
        s, t = 400, 1600
        eps = 2.0 / math.sqrt(sketch.width)
        l2 = math.sqrt(truth.self_join_size(s, t))
        bound = 4 * (eps * l2 + 2 * sketch.delta)
        for item in list(truth.items())[:20]:
            freq = truth.frequency(item, s, t)
            assert abs(sketch.point(item, s, t) - freq) <= bound

    def test_zero_count_update_is_noop(self):
        sketch = PersistentAMS(width=16, depth=2, delta=2)
        sketch.update(1, count=0)
        assert sketch.persistence_words() == 0
