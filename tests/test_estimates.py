"""Tests for bound-carrying estimates."""

import pytest

from repro.core.estimates import Estimate, ams_point, countmin_point
from repro.core.persistent_ams import PersistentAMS
from repro.core.persistent_countmin import PersistentCountMin
from repro.streams.generators import zipf_stream
from repro.streams.truth import GroundTruth


@pytest.fixture(scope="module")
def setup():
    stream = zipf_stream(5000, universe=2**16, exponent=2.0, seed=161)
    truth = GroundTruth(stream)
    cm = PersistentCountMin(width=1024, depth=5, delta=10, seed=4)
    ams = PersistentAMS(width=1024, depth=5, delta=10, seed=4)
    cm.ingest(stream)
    ams.ingest(stream)
    return truth, cm, ams


class TestEstimate:
    def test_interval(self):
        estimate = Estimate(value=10.0, error_bound=3.0, window=(0, 5))
        assert estimate.interval == (7.0, 13.0)

    def test_compatibility(self):
        a = Estimate(value=10.0, error_bound=3.0, window=(0, 5))
        b = Estimate(value=14.0, error_bound=2.0, window=(0, 5))
        c = Estimate(value=20.0, error_bound=1.0, window=(0, 5))
        assert a.compatible_with(b)
        assert b.compatible_with(a)
        assert not a.compatible_with(c)


class TestBoundsHold:
    def test_countmin_bound_contains_truth(self, setup):
        truth, cm, _ = setup
        for s, t in [(0, 5000), (1000, 4000)]:
            for item, freq in truth.top_k(30, s, t):
                estimate = countmin_point(cm, item, s, t)
                lo, hi = estimate.interval
                assert lo <= freq <= hi

    def test_ams_bound_with_measured_l2(self, setup):
        truth, _, ams = setup
        s, t = 1000, 4000
        l2 = truth.self_join_size(s, t) ** 0.5
        hits = 0
        targets = truth.top_k(30, s, t)
        for item, freq in targets:
            estimate = ams_point(ams, item, s, t, window_l2=l2)
            lo, hi = estimate.interval
            hits += lo <= freq <= hi
        # Theorem 4.1 is a constant-probability bound amplified by the
        # median; allow a few misses out of 30.
        assert hits >= len(targets) - 3

    def test_window_mass_override(self, setup):
        truth, cm, _ = setup
        wide = countmin_point(cm, 1, 0, 5000)
        tight = countmin_point(cm, 1, 0, 5000, window_mass=100)
        assert tight.error_bound < wide.error_bound

    def test_default_window_resolution(self, setup):
        _, cm, ams = setup
        assert countmin_point(cm, 1).window == (0, cm.now)
        assert ams_point(ams, 1).window == (0, ams.now)

    def test_significance_reasoning(self, setup):
        """The use case: are two windows' counts genuinely different?"""
        truth, cm, _ = setup
        item, _ = truth.top_k(1)[0]
        first = countmin_point(cm, item, 0, 2500)
        second = countmin_point(cm, item, 2500, 5000)
        diff = abs(first.value - second.value)
        if not first.compatible_with(second):
            # The claim "the item's rate changed" is then sound.
            assert diff > 0
