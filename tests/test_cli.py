"""Tests for the command-line interface."""

import pytest

import repro.cli as cli


class TestExperimentDispatch:
    def test_legacy_shortcut_and_subcommand(self, monkeypatch):
        calls = []
        monkeypatch.setitem(
            cli.EXPERIMENTS, "fig3",
            (lambda ds: calls.append(("fig3", ds)), True),
        )
        assert cli.main(["fig3", "--dataset", "Zipf_3"]) == 0
        assert cli.main(["experiment", "fig3", "--dataset", "Zipf_3"]) == 0
        assert calls == [("fig3", "Zipf_3")] * 2

    def test_all_datasets_by_default(self, monkeypatch):
        calls = []
        monkeypatch.setitem(
            cli.EXPERIMENTS, "fig4",
            (lambda ds: calls.append(ds), True),
        )
        assert cli.main(["fig4"]) == 0
        assert calls == ["ClientID", "ObjectID", "Zipf_3"]

    def test_dataset_free_experiment(self, monkeypatch):
        calls = []
        monkeypatch.setitem(
            cli.EXPERIMENTS, "table1", (lambda: calls.append("t1"), False)
        )
        assert cli.main(["table1"]) == 0
        assert calls == ["t1"]

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["nope"])


class TestPipeline:
    def test_synth_build_query(self, tmp_path, capsys):
        log = tmp_path / "day.log"
        archive = tmp_path / "urls.sketch.gz"
        assert cli.main(["synth", str(log), "--length", "2000"]) == 0
        assert log.stat().st_size == 2000 * 20
        assert (
            cli.main(
                [
                    "build", str(log), str(archive),
                    "--attribute", "object_id",
                    "--width", "256", "--depth", "3", "--delta", "10",
                ]
            )
            == 0
        )
        assert archive.exists()
        capsys.readouterr()
        # Find a real item to query.
        from repro.streams.logs import read_worldcup_log

        item = next(iter(read_worldcup_log(log))).object_id
        assert (
            cli.main(
                ["query", str(archive), "point", "--item", str(item)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert f"f_{item}" in out

    def test_build_from_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "log.csv"
        csv_path.write_text("key\n1\n2\n1\n")
        archive = tmp_path / "s.json"
        assert (
            cli.main(
                [
                    "build", str(csv_path), str(archive),
                    "--csv-column", "key",
                    "--width", "64", "--depth", "2", "--delta", "4",
                ]
            )
            == 0
        )
        assert cli.main(
            ["query", str(archive), "point", "--item", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "f_1" in out

    def test_ams_build_and_self_join(self, tmp_path, capsys):
        csv_path = tmp_path / "log.csv"
        csv_path.write_text("key\n" + "\n".join("12" for _ in range(50)) + "\n")
        archive = tmp_path / "a.json"
        assert (
            cli.main(
                [
                    "build", str(csv_path), str(archive),
                    "--csv-column", "key", "--kind", "ams",
                    "--width", "64", "--depth", "3", "--delta", "2",
                ]
            )
            == 0
        )
        assert cli.main(["query", str(archive), "self_join"]) == 0
        out = capsys.readouterr().out
        assert "F2" in out

    def test_point_query_requires_item(self, tmp_path):
        csv_path = tmp_path / "log.csv"
        csv_path.write_text("key\n1\n")
        archive = tmp_path / "s.json"
        cli.main(
            [
                "build", str(csv_path), str(archive), "--csv-column", "key",
                "--width", "16", "--depth", "2", "--delta", "2",
            ]
        )
        with pytest.raises(SystemExit):
            cli.main(["query", str(archive), "point"])
