"""Tests for the command-line interface."""

import pytest

import repro.cli as cli


class TestExperimentDispatch:
    def test_legacy_shortcut_and_subcommand(self, monkeypatch):
        calls = []
        monkeypatch.setitem(
            cli.EXPERIMENTS, "fig3",
            (lambda ds: calls.append(("fig3", ds)), True),
        )
        assert cli.main(["fig3", "--dataset", "Zipf_3"]) == 0
        assert cli.main(["experiment", "fig3", "--dataset", "Zipf_3"]) == 0
        assert calls == [("fig3", "Zipf_3")] * 2

    def test_all_datasets_by_default(self, monkeypatch):
        calls = []
        monkeypatch.setitem(
            cli.EXPERIMENTS, "fig4",
            (lambda ds: calls.append(ds), True),
        )
        assert cli.main(["fig4"]) == 0
        assert calls == ["ClientID", "ObjectID", "Zipf_3"]

    def test_dataset_free_experiment(self, monkeypatch):
        calls = []
        monkeypatch.setitem(
            cli.EXPERIMENTS, "table1", (lambda: calls.append("t1"), False)
        )
        assert cli.main(["table1"]) == 0
        assert calls == ["t1"]

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["nope"])


class TestPipeline:
    def test_synth_build_query(self, tmp_path, capsys):
        log = tmp_path / "day.log"
        archive = tmp_path / "urls.sketch.gz"
        assert cli.main(["synth", str(log), "--length", "2000"]) == 0
        assert log.stat().st_size == 2000 * 20
        assert (
            cli.main(
                [
                    "build", str(log), str(archive),
                    "--attribute", "object_id",
                    "--width", "256", "--depth", "3", "--delta", "10",
                ]
            )
            == 0
        )
        assert archive.exists()
        capsys.readouterr()
        # Find a real item to query.
        from repro.streams.logs import read_worldcup_log

        item = next(iter(read_worldcup_log(log))).object_id
        assert (
            cli.main(
                ["query", str(archive), "point", "--item", str(item)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert f"f_{item}" in out

    def test_build_from_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "log.csv"
        csv_path.write_text("key\n1\n2\n1\n")
        archive = tmp_path / "s.json"
        assert (
            cli.main(
                [
                    "build", str(csv_path), str(archive),
                    "--csv-column", "key",
                    "--width", "64", "--depth", "2", "--delta", "4",
                ]
            )
            == 0
        )
        assert cli.main(
            ["query", str(archive), "point", "--item", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "f_1" in out

    def test_ams_build_and_self_join(self, tmp_path, capsys):
        csv_path = tmp_path / "log.csv"
        csv_path.write_text("key\n" + "\n".join("12" for _ in range(50)) + "\n")
        archive = tmp_path / "a.json"
        assert (
            cli.main(
                [
                    "build", str(csv_path), str(archive),
                    "--csv-column", "key", "--kind", "ams",
                    "--width", "64", "--depth", "3", "--delta", "2",
                ]
            )
            == 0
        )
        assert cli.main(["query", str(archive), "self_join"]) == 0
        out = capsys.readouterr().out
        assert "F2" in out

    def test_point_query_requires_item(self, tmp_path):
        csv_path = tmp_path / "log.csv"
        csv_path.write_text("key\n1\n")
        archive = tmp_path / "s.json"
        cli.main(
            [
                "build", str(csv_path), str(archive), "--csv-column", "key",
                "--width", "16", "--depth", "2", "--delta", "2",
            ]
        )
        with pytest.raises(SystemExit):
            cli.main(["query", str(archive), "point"])


class TestIngestRecover:
    def _write_records(self, path, lines):
        import json

        with open(path, "w") as handle:
            for line in lines:
                handle.write(
                    line if isinstance(line, str) else json.dumps(line)
                )
                handle.write("\n")

    def test_ingest_fresh_then_resume(self, tmp_path, capsys):
        records = tmp_path / "batch1.jsonl"
        self._write_records(
            records,
            [{"stream": "urls", "item": i % 9} for i in range(40)],
        )
        rc = cli.main(
            [
                "ingest", str(tmp_path / "rt"), str(records),
                "--create-stream", "urls:8:64",
                "--checkpoint-every", "10",
                "--width", "64", "--depth", "3",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "ingested: 40" in out

        more = tmp_path / "batch2.jsonl"
        self._write_records(
            more, [{"stream": "urls", "item": 3} for _ in range(5)]
        )
        rc = cli.main(
            [
                "ingest", str(tmp_path / "rt"), str(more),
                "--resume", "--checkpoint-every", "10",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "resumed at seq 40" in out
        assert "ingested: 5" in out

    def test_ingest_quarantines_garbage(self, tmp_path, capsys):
        records = tmp_path / "dirty.jsonl"
        self._write_records(
            records,
            [
                {"stream": "urls", "item": 1, "time": 5},
                "{not json at all",
                {"stream": "urls", "item": "mistyped"},
                {"stream": "urls", "item": 2, "time": 5},  # duplicate tick
                {"stream": "urls", "item": 3, "time": 9},
            ],
        )
        rc = cli.main(
            [
                "ingest", str(tmp_path / "rt"), str(records),
                "--create-stream", "urls:8",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "ingested: 2" in out
        assert "malformed: 2" in out
        assert "late: 1" in out
        assert "quarantined: 3" in out
        dead = (tmp_path / "rt" / "deadletter.jsonl").read_text()
        assert dead.count("\n") == 3

    def test_ingest_fresh_requires_stream_spec(self, tmp_path):
        records = tmp_path / "r.jsonl"
        records.write_text("")
        with pytest.raises(SystemExit):
            cli.main(["ingest", str(tmp_path / "rt"), str(records)])

    def test_bad_stream_spec_rejected(self, tmp_path):
        records = tmp_path / "r.jsonl"
        records.write_text("")
        with pytest.raises(SystemExit):
            cli.main(
                [
                    "ingest", str(tmp_path / "rt"), str(records),
                    "--create-stream", "just-a-name",
                ]
            )

    def test_recover_reports_and_exports(self, tmp_path, capsys):
        import json

        records = tmp_path / "r.jsonl"
        self._write_records(
            records, [{"stream": "urls", "item": 7} for _ in range(12)]
        )
        assert (
            cli.main(
                [
                    "ingest", str(tmp_path / "rt"), str(records),
                    "--create-stream", "urls:8",
                    "--width", "64", "--depth", "3",
                ]
            )
            == 0
        )
        capsys.readouterr()
        rc = cli.main(
            ["recover", str(tmp_path / "rt"),
             "--export", str(tmp_path / "exported")]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "exported recovered store" in out
        summary = json.loads(out[out.index("{"):])
        assert summary["applied_seq"] == 12
        assert summary["streams"] == {"urls": 12}
        from repro.store import SketchStore

        store = SketchStore.open(tmp_path / "exported")
        assert store.point("urls", 7) == 12.0

    def test_recover_empty_directory_fails(self, tmp_path, capsys):
        rc = cli.main(["recover", str(tmp_path / "void")])
        assert rc == 1
        assert "recovery failed" in capsys.readouterr().err
