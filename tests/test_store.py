"""Tests for the multi-stream sketch store facade."""

import pytest

from repro.store import SketchStore, StreamSpec
from repro.streams.generators import zipf_stream
from repro.streams.truth import GroundTruth


@pytest.fixture()
def store():
    return SketchStore(width=512, depth=4, join_width=1024, seed=5)


def filled_store():
    store = SketchStore(width=512, depth=4, join_width=1024, seed=5)
    store.create(
        StreamSpec(name="urls", delta=8, universe=256, heavy_hitters=True,
                   joinable=True)
    )
    store.create(StreamSpec(name="clicks", delta=8, joinable=True))
    url_stream = zipf_stream(3000, universe=200, exponent=2.0, seed=88)
    click_stream = zipf_stream(3000, universe=200, exponent=2.0, seed=88)
    for t, item in enumerate(url_stream.items, start=1):
        store.update("urls", int(item), time=t)
    for t, item in enumerate(click_stream.items, start=1):
        store.update("clicks", int(item), time=t)
    return store, GroundTruth(url_stream), GroundTruth(click_stream)


class TestSpecs:
    def test_invalid_names(self):
        with pytest.raises(ValueError):
            StreamSpec(name="", delta=5)
        with pytest.raises(ValueError):
            StreamSpec(name="a/b", delta=5)

    def test_hh_requires_universe(self):
        with pytest.raises(ValueError):
            StreamSpec(name="x", delta=5, heavy_hitters=True)

    def test_duplicate_stream(self, store):
        store.create(StreamSpec(name="s", delta=4))
        with pytest.raises(ValueError):
            store.create(StreamSpec(name="s", delta=4))

    def test_unknown_stream(self, store):
        with pytest.raises(KeyError):
            store.point("nope", 1)


class TestQueries:
    def test_point_and_window(self):
        store, truth, _ = filled_store()
        item, freq = truth.top_k(1)[0]
        assert store.point("urls", item) == pytest.approx(freq, abs=20)
        windowed = truth.frequency(item, 1000, 2000)
        assert store.point("urls", item, 1000, 2000) == pytest.approx(
            windowed, abs=20
        )

    def test_heavy_hitters_and_topk(self):
        store, truth, _ = filled_store()
        actual = truth.heavy_hitters(0.05, 500, 2500)
        found = store.heavy_hitters("urls", 0.05, 500, 2500)
        assert set(actual) <= set(found)
        top = store.top_k("urls", 3, 0, 3000)
        assert [item for item, _ in top[:1]] == [truth.top_k(1)[0][0]]

    def test_hh_disabled_raises(self):
        store, _, _ = filled_store()
        with pytest.raises(ValueError):
            store.heavy_hitters("clicks", 0.1)
        with pytest.raises(ValueError):
            store.top_k("clicks", 3)

    def test_join_between_streams(self):
        store, url_truth, click_truth = filled_store()
        actual = url_truth.join_size(click_truth, 600, 2400)
        estimate = store.join_size("urls", "clicks", 600, 2400)
        assert estimate == pytest.approx(actual, rel=0.3)

    def test_self_join(self):
        store, truth, _ = filled_store()
        actual = truth.self_join_size(0, 3000)
        assert store.self_join_size("urls") == pytest.approx(actual, rel=0.3)

    def test_join_requires_joinable(self, store):
        store.create(StreamSpec(name="plain", delta=4))
        store.create(StreamSpec(name="other", delta=4, joinable=True))
        with pytest.raises(ValueError):
            store.join_size("plain", "other")
        with pytest.raises(ValueError):
            store.self_join_size("plain")

    def test_space_accounting(self):
        store, _, _ = filled_store()
        assert store.persistence_words() > 0
        assert store.streams() == ["clicks", "urls"]


class TestDurability:
    def test_save_open_roundtrip(self, tmp_path):
        store, truth, click_truth = filled_store()
        directory = store.save(tmp_path / "store")
        reopened = SketchStore.open(directory)
        assert reopened.streams() == store.streams()
        item, _ = truth.top_k(1)[0]
        assert reopened.point("urls", item, 500, 2500) == store.point(
            "urls", item, 500, 2500
        )
        assert reopened.join_size("urls", "clicks", 0, 3000) == (
            store.join_size("urls", "clicks", 0, 3000)
        )
        assert reopened.heavy_hitters("urls", 0.05).keys() == (
            store.heavy_hitters("urls", 0.05).keys()
        )

    def test_open_rejects_non_store(self, tmp_path):
        (tmp_path / "manifest.json").write_text('{"format": "x"}')
        with pytest.raises(ValueError):
            SketchStore.open(tmp_path)

    def test_quantiles_roundtrip(self, tmp_path):
        store = SketchStore(width=256, depth=3, join_width=256, seed=2)
        store.create(
            StreamSpec(name="readings", delta=4, universe=512, quantiles=True)
        )
        for t in range(1, 1001):
            store.update("readings", (t * 7) % 400, time=t)
        median = store.quantile("readings", 0.5)
        assert 150 <= median <= 250  # values spread over [0, 400)
        assert store.rank("readings", 399) == pytest.approx(1000, rel=0.1)
        # HH queries stay gated on the heavy_hitters flag.
        with pytest.raises(ValueError):
            store.heavy_hitters("readings", 0.1)
        reopened = SketchStore.open(store.save(tmp_path / "q"))
        assert reopened.quantile("readings", 0.5) == median

    def test_quantiles_requires_flag(self):
        store = SketchStore(width=64, depth=2, join_width=64)
        store.create(StreamSpec(name="plain", delta=4))
        with pytest.raises(ValueError):
            store.quantile("plain", 0.5)

    def test_quantiles_requires_universe(self):
        with pytest.raises(ValueError):
            StreamSpec(name="x", delta=4, quantiles=True)

    def test_continued_ingest_after_open(self, tmp_path):
        store, _, _ = filled_store()
        reopened = SketchStore.open(store.save(tmp_path / "s"))
        reopened.update("urls", 3, time=3001)
        assert reopened.point("urls", 3, 3000, 3001) == pytest.approx(
            1, abs=17
        )


class TestAtomicSave:
    """save() stages into a temp directory and swaps it in atomically."""

    def _small_store(self):
        store = SketchStore(width=64, depth=2, join_width=64, seed=3)
        store.create(StreamSpec(name="s", delta=4))
        for t in range(1, 101):
            store.update("s", t % 9, time=t)
        return store

    def test_crash_mid_save_leaves_previous_store_intact(
        self, tmp_path, monkeypatch
    ):
        import repro.io.atomic as atomic

        store = self._small_store()
        directory = store.save(tmp_path / "store")
        before = SketchStore.open(directory).point("s", 4)

        def exploding_swap(tmp_dir, final_dir):
            raise OSError("simulated crash during directory swap")

        monkeypatch.setattr(
            "repro.store.store.replace_directory", exploding_swap
        )
        store.update("s", 4, time=101)
        with pytest.raises(OSError):
            store.save(directory)
        monkeypatch.undo()
        reopened = SketchStore.open(directory)
        assert reopened.point("s", 4) == before

    def test_overwrite_save_replaces_cleanly(self, tmp_path):
        store = self._small_store()
        directory = store.save(tmp_path / "store")
        store.update("s", 4, time=101)
        store.save(directory)
        reopened = SketchStore.open(directory)
        assert reopened.point("s", 4) == store.point("s", 4)
        # No staging/backup residue next to the store.
        leftovers = [
            p.name
            for p in tmp_path.iterdir()
            if p.name not in ("store",)
        ]
        assert leftovers == []

    def test_open_wraps_corrupt_manifest(self, tmp_path):
        from repro.io import SerializationError

        store = self._small_store()
        directory = store.save(tmp_path / "store")
        (directory / "manifest.json").write_text("{not json")
        with pytest.raises(SerializationError) as excinfo:
            SketchStore.open(directory)
        assert "manifest" in str(excinfo.value)

    def test_open_wraps_unreadable_manifest(self, tmp_path):
        from repro.io import SerializationError

        with pytest.raises(SerializationError):
            SketchStore.open(tmp_path / "never-existed")
