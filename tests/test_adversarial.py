"""Adversarial and boundary-condition behaviour.

The paper's Section 3.3 concedes the PLA space bound degrades to the
baseline's on adversarial inputs; these tests pin down that worst case,
plus extreme parameters and hostile time patterns that a production
deployment would eventually see.
"""

import numpy as np
import pytest

from repro.core.persistent_ams import PersistentAMS
from repro.core.persistent_countmin import PersistentCountMin, PWCCountMin
from repro.pla.orourke import OnlinePLA
from repro.streams.model import Stream


class TestAdversarialStreams:
    def test_pla_worst_case_sawtooth(self):
        """A turnstile sawtooth of amplitude >> delta forces a segment
        every O(delta) updates — the worst case of Section 3.3."""
        delta = 5.0
        pla = OnlinePLA(delta=delta)
        v = 0.0
        m = 4000
        amplitude = 40
        for t in range(1, m + 1):
            direction = 1 if (t // amplitude) % 2 == 0 else -1
            v += direction
            pla.feed(t, v)
        segments = len(pla.finalize())
        # Within a constant of m / (2 * delta); certainly Omega(m/100).
        assert segments >= m / 100
        assert segments <= 2 * m / delta

    def test_pla_adversarial_equals_baseline_order(self):
        """On the sawtooth, PLA's space advantage over PWC disappears
        (both are Theta(m / delta)) — the paper's stated limitation."""
        m, delta = 4000, 5
        items = np.zeros(m, dtype=np.int64)
        # Zigzag legs just longer than the 2*delta tube: every leg turn
        # breaks the line fit.
        counts = np.where((np.arange(m) // 12) % 2 == 0, 1, -1)
        stream = Stream(items=items, counts=counts)
        pla = PersistentCountMin(width=4, depth=1, delta=delta)
        pwc = PWCCountMin(width=4, depth=1, delta=delta)
        pla.ingest(stream)
        pwc.ingest(stream)
        pla.finalize()
        assert pla.persistence_words() >= pwc.persistence_words() / 4

    def test_single_item_hammering(self):
        """One key, every tick: the most concentrated possible stream."""
        sketch = PersistentCountMin(width=64, depth=3, delta=10)
        for t in range(1, 5001):
            sketch.update(42, time=t)
        assert sketch.point(42, 0, 5000) == pytest.approx(5000, abs=25)
        assert sketch.point(42, 2499, 2500) == pytest.approx(1, abs=25)


class TestExtremeParameters:
    def test_width_one(self):
        """Everything collides: estimates become the window mass."""
        sketch = PersistentCountMin(width=1, depth=2, delta=4)
        for t, item in enumerate([1, 2, 3, 4], start=1):
            sketch.update(item, time=t)
        assert sketch.point(1, 0, 4) == pytest.approx(4, abs=5)

    def test_tiny_delta(self):
        sketch = PersistentCountMin(width=64, depth=2, delta=0.25)
        for t in range(1, 101):
            sketch.update(5, time=t)
        assert sketch.point(5, 0, 100) == pytest.approx(100, abs=1.5)

    def test_huge_delta(self):
        """Delta larger than the stream: everything fits one line; the
        answer error is bounded by delta as promised, no more."""
        sketch = PersistentCountMin(width=64, depth=2, delta=10_000)
        for t in range(1, 101):
            sketch.update(5, time=t)
        assert abs(sketch.point(5, 0, 100) - 100) <= 10_000
        assert sketch.persistence_words() == 0

    def test_sample_probability_clamps(self):
        sketch = PersistentAMS(width=16, depth=2, delta=1.0)
        assert sketch.probability == 1.0  # records everything
        for t in range(1, 51):
            sketch.update(3, time=t)
        assert sketch.point(3, 0, 50) == pytest.approx(50, abs=1)


class TestHostileTimePatterns:
    def test_huge_time_gaps(self):
        """Years of silence between updates must not hurt precision."""
        sketch = PersistentCountMin(width=64, depth=3, delta=2)
        times = [1, 10**6, 10**9, 10**12]
        for t in times:
            sketch.update(9, time=t)
        for idx, t in enumerate(times, start=1):
            assert sketch.point(9, 0, t) == pytest.approx(idx, abs=3)
        # Mid-gap queries hold the last value.
        assert sketch.point(9, 0, 10**7) == pytest.approx(2, abs=3)

    def test_burst_then_silence(self):
        sketch = PersistentAMS(width=64, depth=3, delta=2)
        for t in range(1, 201):
            sketch.update(4, time=t)
        sketch.update(5, time=10**9)
        assert sketch.point(4, 0, 10**8) == pytest.approx(200, abs=20)

    def test_interleaved_keys_alternating(self):
        """Two keys strictly alternating: each counter sees every other
        tick, exercising gap handling inside runs."""
        sketch = PersistentCountMin(width=128, depth=3, delta=3)
        for t in range(1, 2001):
            sketch.update(t % 2, time=t)
        assert sketch.point(0, 0, 2000) == pytest.approx(1000, abs=10)
        assert sketch.point(1, 500, 1500) == pytest.approx(500, abs=10)
