"""Tests for the fractional-cascading timeline index."""

from bisect import bisect_right

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.persistence.timeline import TimelineIndex


def brute_force(lists, t):
    return [bisect_right(lst, t) - 1 for lst in lists]


class TestBasics:
    def test_single_list(self):
        index = TimelineIndex([[1, 5, 9]])
        assert index.predecessors(0) == [-1]
        assert index.predecessors(1) == [0]
        assert index.predecessors(7) == [1]
        assert index.predecessors(100) == [2]

    def test_multiple_lists(self):
        lists = [[1, 10, 20], [5, 15], [2, 4, 6, 8]]
        index = TimelineIndex(lists)
        for t in range(0, 25):
            assert index.predecessors(t) == brute_force(lists, t)

    def test_empty_lists_allowed(self):
        index = TimelineIndex([[], [3], []])
        assert index.predecessors(5) == [-1, 0, -1]

    def test_no_lists(self):
        index = TimelineIndex([])
        assert index.predecessors(10) == []
        assert index.words() == 0

    def test_rejects_non_increasing(self):
        with pytest.raises(ValueError):
            TimelineIndex([[1, 1, 2]])
        with pytest.raises(ValueError):
            TimelineIndex([[3, 2]])

    def test_words_overhead_bounded(self):
        lists = [list(range(0, 100, 3)), list(range(1, 100, 5))]
        index = TimelineIndex(lists)
        total = sum(len(lst) for lst in lists)
        # Augmented size <= 2x original per classic cascading analysis.
        assert index.words() <= 3 * 2 * total + 6


@settings(max_examples=80, deadline=None)
@given(
    st.lists(
        st.lists(
            st.integers(min_value=0, max_value=500), max_size=40
        ).map(lambda xs: sorted(set(xs))),
        min_size=1,
        max_size=8,
    ),
    st.integers(min_value=-5, max_value=505),
)
def test_matches_brute_force(lists, t):
    index = TimelineIndex(lists)
    assert index.predecessors(t) == brute_force(lists, t)


def test_many_lists_deep_cascade():
    lists = [list(range(i, 1000, 7 + i)) for i in range(20)]
    index = TimelineIndex(lists)
    for t in (0, 13, 250, 999, 5000):
        assert index.predecessors(t) == brute_force(lists, t)
