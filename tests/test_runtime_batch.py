"""Batch-framed WAL ingestion: equality with scalar ingest and crash safety.

``IngestRuntime.ingest_batch`` frames accepted records into the WAL with
one fsync per chunk and applies them through the columnar sketch
planners.  These tests pin the contract down: the WAL *bytes*, clocks,
statistics, checkpoint cadence and full store state must be bit-identical
to per-record :meth:`ingest`, and a crash in the middle of a batch must
recover exactly like a crash between scalar records — the unacknowledged
tail is re-sent, nothing double-counts.
"""

import json
import random

import pytest

from repro.runtime import (
    FaultPlan,
    IngestPolicy,
    IngestRuntime,
    LateRecordError,
    SimulatedCrash,
)
from repro.runtime.wal import WriteAheadLog
from repro.store import SketchStore, StreamSpec
from repro.streams.model import Stream
from repro.streams.records import read_jsonl_batches
from tests.test_batch_ingest import fingerprint

UNIVERSE = 64


def make_store():
    store = SketchStore(width=64, depth=3, join_width=64, seed=11)
    store.create(
        StreamSpec(
            name="urls",
            delta=4,
            universe=UNIVERSE,
            heavy_hitters=True,
            joinable=True,
        )
    )
    store.create(StreamSpec(name="ads", delta=4, joinable=True))
    return store


def make_raws(n=400, dirty=True):
    """A mixed feed: two streams, auto-ticks, late, and malformed raws."""
    rng = random.Random(77)
    raws = []
    clock = {"urls": 0, "ads": 0}
    for i in range(n):
        name = "urls" if i % 3 else "ads"
        raw = {"stream": name, "item": rng.randrange(UNIVERSE)}
        if rng.random() < 0.5:
            raw["count"] = rng.choice([1, 2, 3])
        if rng.random() < 0.6:
            clock[name] += rng.randrange(1, 4)
            raw["time"] = clock[name]
        else:
            clock[name] += 1  # auto-tick
        raws.append(raw)
        if dirty and i % 41 == 7:
            raws.append({"stream": name, "item": 1, "time": clock[name]})  # late
        if dirty and i % 53 == 9:
            raws.append({"stream": "ghost", "item": 1})  # unknown stream
        if dirty and i % 67 == 11:
            raws.append({"item": "nope"})  # malformed
    return raws


def wal_bytes(runtime):
    return b"".join(
        path.read_bytes() for _seq, path in runtime.wal.segments()
    )


def store_state(runtime):
    return fingerprint(runtime.store._streams)


QUARANTINE = {"on_malformed": "quarantine", "on_late": "quarantine"}


class TestBatchEqualsScalar:
    @pytest.mark.parametrize("batch_size", [7, 77])
    def test_mixed_feed_is_bit_identical(self, tmp_path, batch_size):
        raws = make_raws()
        scalar = IngestRuntime.create(
            tmp_path / "scalar",
            make_store(),
            checkpoint_every=100,
            policy=IngestPolicy(**QUARANTINE),
        )
        for raw in raws:
            scalar.ingest(raw)
        batched = IngestRuntime.create(
            tmp_path / "batched",
            make_store(),
            checkpoint_every=100,
            policy=IngestPolicy(**QUARANTINE),
        )
        applied = 0
        for lo in range(0, len(raws), batch_size):
            applied += batched.ingest_batch(raws[lo : lo + batch_size])

        assert applied == scalar.stats.ingested
        assert batched.applied_seq == scalar.applied_seq
        assert batched._clocks == scalar._clocks
        assert batched.stats.as_dict() == scalar.stats.as_dict()
        assert wal_bytes(batched) == wal_bytes(scalar)
        assert store_state(batched) == store_state(scalar)
        # Checkpoint cadence (which shapes PLA segmentation) matched too.
        scalar_cp = sorted(p.name for p in (tmp_path / "scalar").iterdir())
        batched_cp = sorted(p.name for p in (tmp_path / "batched").iterdir())
        assert batched_cp == scalar_cp

    def test_ingest_stream_batch_size(self, tmp_path):
        rng = random.Random(5)
        items = [rng.randrange(UNIVERSE) for _ in range(300)]
        stream = Stream(items)
        scalar = IngestRuntime.create(
            tmp_path / "scalar", make_store(), checkpoint_every=90
        )
        assert scalar.ingest_stream("urls", stream) == 300
        batched = IngestRuntime.create(
            tmp_path / "batched", make_store(), checkpoint_every=90
        )
        assert batched.ingest_stream("urls", stream, batch_size=64) == 300
        assert wal_bytes(batched) == wal_bytes(scalar)
        assert store_state(batched) == store_state(scalar)
        with pytest.raises(ValueError, match="batch_size"):
            batched.ingest_stream("urls", stream, batch_size=0)

    def test_raise_policy_flushes_accepted_prefix(self, tmp_path):
        runtime = IngestRuntime.create(
            tmp_path / "rt",
            make_store(),
            checkpoint_every=1000,
            policy=IngestPolicy(on_late="raise"),
        )
        raws = [
            {"stream": "urls", "item": 1, "time": 5},
            {"stream": "urls", "item": 2, "time": 9},
            {"stream": "urls", "item": 3, "time": 9},  # late: not past 9
            {"stream": "urls", "item": 4, "time": 12},
        ]
        with pytest.raises(LateRecordError, match="is not past it"):
            runtime.ingest_batch(raws)
        # Scalar semantics: the records before the offender are durable
        # and applied before the raise; the tail was never reached.
        assert runtime.applied_seq == 2
        assert runtime.clock("urls") == 9
        assert runtime.stats.ingested == 2
        assert runtime.stats.late == 1

    def test_quarantine_counts_match_batch_positions(self, tmp_path):
        runtime = IngestRuntime.create(
            tmp_path / "rt",
            make_store(),
            checkpoint_every=1000,
            policy=IngestPolicy(**QUARANTINE),
        )
        raws = [
            {"stream": "urls", "item": 1},
            {"bogus": True},
            {"stream": "urls", "item": 2, "time": 1},  # late vs pending clock
            {"stream": "urls", "item": 3},
        ]
        # Auto-tick puts the first record at time 1, so the explicit
        # time=1 record is late *against the pending batch clock*.
        assert runtime.ingest_batch(raws) == 2
        stats = runtime.stats.as_dict()
        assert stats["ingested"] == 2
        assert stats["malformed"] == 1
        assert stats["late"] == 1
        assert stats["quarantined"] == 2
        assert runtime.clock("urls") == 2


class TestWalBatchFraming:
    def test_append_many_bytes_equal_repeated_append(self, tmp_path):
        records = [
            {"stream": "s", "item": i, "count": 1, "time": i + 1}
            for i in range(25)
        ]
        one = WriteAheadLog(tmp_path / "one")
        for record in records:
            one.append(record)
        many = WriteAheadLog(tmp_path / "many")
        seqs = many.append_many(records)
        assert seqs == list(range(1, 26))
        assert many.next_seq == one.next_seq == 26
        one_bytes = b"".join(p.read_bytes() for _s, p in one.segments())
        many_bytes = b"".join(p.read_bytes() for _s, p in many.segments())
        assert many_bytes == one_bytes

    def test_append_many_empty_is_noop(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        assert wal.append_many([]) == []
        assert wal.next_seq == 1


class TestCrashDuringBatch:
    """A batch crash recovers exactly like a scalar crash.

    The fault ordinal 143 lands mid-chunk (chunks of 50, checkpoints at
    120): torn writes and pre-WAL crashes leave the durable prefix at
    142, a post-durability crash leaves the whole framed chunk (150)
    durable but unapplied — recovery replays it from the WAL.
    """

    @pytest.mark.parametrize(
        "plan, durable",
        [
            (FaultPlan(crash_before_record=143), 142),
            (FaultPlan(torn_write_at_record=143), 142),
            (FaultPlan(crash_after_record=143), 150),
        ],
    )
    def test_recover_and_resend_matches_twin(self, tmp_path, plan, durable):
        raws = make_raws(n=300, dirty=False)
        twin = IngestRuntime.create(
            tmp_path / "twin", make_store(), checkpoint_every=120
        )
        for lo in range(0, len(raws), 50):
            twin.ingest_batch(raws[lo : lo + 50])

        victim = IngestRuntime.create(
            tmp_path / "victim",
            make_store(),
            checkpoint_every=120,
            faults=plan,
            sleep=lambda _t: None,
        )
        with pytest.raises(SimulatedCrash):
            for lo in range(0, len(raws), 50):
                victim.ingest_batch(raws[lo : lo + 50])

        recovered = IngestRuntime.recover(
            tmp_path / "victim", checkpoint_every=120
        )
        assert recovered.applied_seq == durable
        recovered.ingest_batch(raws[recovered.applied_seq :])

        assert recovered.applied_seq == twin.applied_seq
        assert recovered._clocks == twin._clocks
        # The recovered runtime's counters cover only the re-sent tail.
        assert recovered.stats.ingested == len(raws) - durable
        assert store_state(recovered) == store_state(twin)


class TestChunkedReader:
    def _write(self, path, lines):
        with open(path, "w") as handle:
            for line in lines:
                handle.write(
                    line if isinstance(line, str) else json.dumps(line)
                )
                handle.write("\n")

    def test_batches_preserve_order_and_malformed_positions(self, tmp_path):
        path = tmp_path / "records.jsonl"
        self._write(
            path,
            [
                {"stream": "urls", "item": 0},
                {"stream": "urls", "item": 1},
                "this is not json",
                {"stream": "urls", "item": 3},
                {"stream": "urls", "item": 4},
            ],
        )
        batches = list(read_jsonl_batches(path, 2))
        assert [len(b) for b in batches] == [2, 2, 1]
        flat = [raw for batch in batches for raw in batch]
        assert [raw.get("item") if isinstance(raw, dict) else None for raw in flat] == [
            0, 1, None, 3, 4,
        ]
        # The malformed line rides along in position; the runtime's
        # per-record classification quarantines it like scalar ingest.
        runtime = IngestRuntime.create(
            tmp_path / "rt",
            make_store(),
            checkpoint_every=1000,
            policy=IngestPolicy(**QUARANTINE),
        )
        for batch in batches:
            runtime.ingest_batch(batch)
        assert runtime.stats.ingested == 4
        assert runtime.stats.malformed == 1

    def test_batch_size_validation(self, tmp_path):
        path = tmp_path / "records.jsonl"
        self._write(path, [{"stream": "urls", "item": 0}])
        with pytest.raises(ValueError, match="batch size"):
            list(read_jsonl_batches(path, 0))
