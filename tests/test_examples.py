"""Regression guard: every shipped example runs end to end.

Examples are the first code a new user executes; each is run as a
subprocess exactly as the README instructs, and a few load-bearing
output lines are checked so silent breakage (not just crashes) is
caught.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"

CASES = [
    ("quickstart.py", ["persistence words", "element"]),
    ("url_trending.py", ["heavy hitters of days 6-8", "cumulative requests"]),
    ("join_size_estimation.py", ["true join", "window F2"]),
    ("network_monitoring.py", ["incident window", "monitor persistence"]),
    ("sketch_store_tour.py", ["store persistence", "reopened from"]),
    ("scientific_readings.py", ["top Haar coefficients", "running median"]),
]


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


@pytest.mark.parametrize("name,needles", CASES, ids=[c[0] for c in CASES])
def test_example_runs_and_reports(name, needles):
    stdout = run_example(name)
    for needle in needles:
        assert needle in stdout, f"{name}: missing {needle!r} in output"


def test_every_example_file_is_covered():
    shipped = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    covered = {name for name, _ in CASES}
    assert shipped == covered
