"""Tests for the DGIM exponential histogram and its comparison with
persistent sketches (the Section 1.1 positioning)."""

import numpy as np
import pytest

from repro.baselines import ExponentialHistogram
from repro.core.persistent_countmin import PersistentCountMin
from repro.core.sliding import SlidingWindowView


def brute_count(events, now, window):
    return sum(1 for t in events if now - window < t <= now)


class TestValidation:
    def test_params(self):
        with pytest.raises(ValueError):
            ExponentialHistogram(window=0)
        with pytest.raises(ValueError):
            ExponentialHistogram(window=10, eps=0)

    def test_time_monotonicity(self):
        eh = ExponentialHistogram(window=10)
        eh.add(5)
        with pytest.raises(ValueError):
            eh.add(4)
        with pytest.raises(ValueError):
            eh.advance(4)


class TestAccuracy:
    def test_exact_for_small_counts(self):
        # eps=0.25 -> 4 buckets per size: three events stay unmerged.
        eh = ExponentialHistogram(window=100, eps=0.25)
        for t in (1, 2, 3):
            eh.add(t)
        assert eh.estimate() == 3.0

    def test_expiry(self):
        eh = ExponentialHistogram(window=10, eps=0.5)
        for t in range(1, 6):
            eh.add(t)
        eh.advance(20)  # everything left the window
        assert eh.estimate() == 0.0

    @pytest.mark.parametrize("eps", [0.5, 0.2, 0.1])
    def test_relative_error_bound(self, eps):
        rng = np.random.default_rng(42)
        window = 500
        eh = ExponentialHistogram(window=window, eps=eps)
        events = []
        t = 0
        for _ in range(5000):
            t += int(rng.integers(1, 4))
            if rng.random() < 0.7:
                eh.add(t)
                events.append(t)
            else:
                eh.advance(t)
            if len(events) % 37 == 0:
                actual = brute_count(events, t, window)
                assert abs(eh.estimate() - actual) <= eps * actual + 1

    def test_space_logarithmic(self):
        eh = ExponentialHistogram(window=100_000, eps=0.1)
        for t in range(1, 50_001):
            eh.add(t)
        # ~(1/eps) * log2(W) buckets vs 50k events.
        assert eh.bucket_count() < 12 * 18
        assert eh.words() < 500


class TestCapabilityGap:
    def test_persistent_sketch_answers_past_windows_dgim_cannot(self):
        """The paper's point in one test: after the stream has moved on,
        DGIM reports only the current window; the persistent sketch can
        still reproduce what DGIM said at *any* earlier moment."""
        window = 200
        item = 7
        eh = ExponentialHistogram(window=window, eps=0.1)
        sketch = PersistentCountMin(width=256, depth=4, delta=4)
        rng = np.random.default_rng(8)
        dgim_history = {}
        for t in range(1, 2001):
            if rng.random() < 0.3:
                eh.add(t)
                sketch.update(item, time=t)
            else:
                eh.advance(t)
            if t % 400 == 0:
                dgim_history[t] = eh.estimate()

        view = SlidingWindowView(sketch, window=window)
        for t, dgim_then in dgim_history.items():
            persistent_now = view.point(item, at=t)
            # Both approximate the same true count; agree within their
            # combined error budgets.
            assert persistent_now == pytest.approx(
                dgim_then, abs=0.1 * dgim_then + 2 * 4 + 2
            )
        # And the persistent sketch answers a window DGIM never saw:
        assert view.point(item, at=777) >= 0
