"""Shared test fixtures: small deterministic streams and truths.

The runtime contract layer (:mod:`repro.analysis.contracts`) is forced
on for the whole suite: the env var must be set *before* any ``repro``
module is imported so the contract decorators wrap the hot paths at
class-definition time.
"""

import os

os.environ["REPRO_CONTRACTS"] = "1"

import pytest

from repro.analysis import contracts
from repro.streams.generators import zipf_stream
from repro.streams.model import Stream
from repro.streams.truth import GroundTruth


@pytest.fixture(scope="session", autouse=True)
def _contracts_enforced():
    """Every test runs with the sketch contracts enforced."""
    if not contracts.enabled():  # pragma: no cover - guards setup drift
        raise RuntimeError("REPRO_CONTRACTS must be active in the test suite")
    yield


@pytest.fixture(scope="session")
def small_zipf() -> Stream:
    """A small, highly skewed stream shared across read-only tests."""
    return zipf_stream(5000, universe=2**20, exponent=2.0, seed=123)


@pytest.fixture(scope="session")
def small_zipf_truth(small_zipf) -> GroundTruth:
    return GroundTruth(small_zipf)


@pytest.fixture()
def tiny_stream() -> Stream:
    """Ten updates with known frequencies: 1 x4, 2 x3, 3 x2, 4 x1."""
    items = [1, 2, 1, 3, 1, 2, 4, 1, 2, 3]
    return Stream(items=items, universe=8)
