"""Tests for the synthetic stream generators."""

import numpy as np
import pytest

from repro.sketch.exact import ExactFrequency
from repro.streams.generators import (
    turnstile_stream,
    uniform_stream,
    zipf_stream,
)
from repro.streams.worldcup import client_id_stream, object_id_stream


class TestZipf:
    def test_determinism(self):
        a = zipf_stream(1000, seed=5)
        b = zipf_stream(1000, seed=5)
        assert np.array_equal(a.items, b.items)

    def test_different_seeds_differ(self):
        a = zipf_stream(1000, seed=5)
        b = zipf_stream(1000, seed=6)
        assert not np.array_equal(a.items, b.items)

    def test_items_within_universe(self):
        stream = zipf_stream(2000, universe=2**20, seed=1)
        assert stream.items.min() >= 0
        assert stream.items.max() < 2**20

    def test_skew_concentrates_mass(self):
        stream = zipf_stream(20_000, exponent=3.0, seed=2)
        exact = ExactFrequency()
        exact.update_many(int(i) for i in stream.items)
        top = exact.top_k(1)[0][1]
        # Zipf(3): the top item carries ~83% of the mass.
        assert top > 0.6 * len(stream)

    def test_lower_exponent_less_skewed(self):
        heavy = zipf_stream(20_000, exponent=3.0, seed=3)
        light = zipf_stream(20_000, exponent=1.2, seed=3)

        def top_share(stream):
            exact = ExactFrequency()
            exact.update_many(int(i) for i in stream.items)
            return exact.top_k(1)[0][1] / len(stream)

        assert top_share(light) < top_share(heavy)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            zipf_stream(-1)


class TestUniform:
    def test_near_uniform_frequencies(self):
        stream = uniform_stream(10_000, universe=100, seed=4)
        exact = ExactFrequency()
        exact.update_many(int(i) for i in stream.items)
        top = exact.top_k(1)[0][1]
        assert top < 3 * len(stream) / 100

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            uniform_stream(-5)


class TestTurnstile:
    def test_frequencies_stay_non_negative(self):
        stream = turnstile_stream(5000, universe=64, seed=7)
        exact = ExactFrequency()
        running = {}
        for update in stream:
            exact.update(update.item, update.count)
            running[update.item] = running.get(update.item, 0) + update.count
            assert running[update.item] >= 0

    def test_contains_deletions(self):
        stream = turnstile_stream(
            5000, universe=64, deletion_probability=0.4, seed=8
        )
        assert (stream.counts == -1).sum() > 500

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            turnstile_stream(10, deletion_probability=1.0)


class TestWorldCupProfiles:
    def test_object_id_hot_concentration(self):
        stream = object_id_stream(30_000, seed=11)
        exact = ExactFrequency()
        exact.update_many(int(i) for i in stream.items)
        top500 = sum(freq for _, freq in exact.top_k(500))
        # The paper: "most frequencies concentrating on around 500 items".
        assert top500 > 0.6 * len(stream)

    def test_object_id_has_long_tail(self):
        stream = object_id_stream(30_000, seed=11)
        exact = ExactFrequency()
        exact.update_many(int(i) for i in stream.items)
        assert len(exact) > 3000

    def test_client_id_near_uniform(self):
        stream = client_id_stream(30_000, seed=12)
        exact = ExactFrequency()
        exact.update_many(int(i) for i in stream.items)
        max_freq = exact.top_k(1)[0][1]
        # The paper: max frequency is a tiny fraction of the stream
        # (14645 of 7M ~ 0.2%); allow up to 2%.
        assert max_freq < 0.02 * len(stream)
        assert len(exact) > len(stream) // 20

    def test_determinism(self):
        a = object_id_stream(2000, seed=13)
        b = object_id_stream(2000, seed=13)
        assert np.array_equal(a.items, b.items)

    def test_stationary_variant(self):
        stream = object_id_stream(2000, seed=14, drift=0.0)
        assert len(stream) == 2000

    @pytest.mark.parametrize("factory", [object_id_stream, client_id_stream])
    def test_invalid_params(self, factory):
        with pytest.raises(ValueError):
            factory(-1)

    def test_hot_mass_validation(self):
        with pytest.raises(ValueError):
            object_id_stream(100, hot_mass=1.5)
        with pytest.raises(ValueError):
            client_id_stream(100, proxy_mass=-0.1)
