"""Tests for the uniform counter-tracker interface."""

import pytest

from repro.persistence.tracker import CounterTracker, PLATracker, PWCTracker


@pytest.mark.parametrize("factory", [PLATracker, PWCTracker])
class TestConformance:
    def test_is_counter_tracker(self, factory):
        assert isinstance(factory(delta=2.0), CounterTracker)

    def test_read_error_bounded(self, factory):
        delta = 3.0
        tracker = factory(delta=delta)
        values = {}
        v = 0.0
        for t in range(1, 500):
            v += (t * 7919) % 3 - 1  # deterministic pseudo-walk in {-1,0,1}
            tracker.feed(t, v)
            values[t] = v
        tracker.finalize()
        for t, v in values.items():
            assert abs(tracker.value_at(t) - v) <= delta + 1

    def test_initial_value(self, factory):
        tracker = factory(delta=1.0, initial_value=42.0)
        assert tracker.value_at(10) == 42.0

    def test_words_non_negative(self, factory):
        tracker = factory(delta=1.0)
        assert tracker.words() >= 0
        for t in range(1, 100):
            tracker.feed(t, float(t * 5))
        tracker.finalize()
        assert tracker.words() > 0


class TestSpecifics:
    def test_pla_segment_count(self):
        tracker = PLATracker(delta=1.0)
        tracker.feed(1, 0.0)
        assert tracker.segment_count() == 1

    def test_pwc_record_count(self):
        tracker = PWCTracker(delta=1.0)
        tracker.feed(1, 10.0)
        assert tracker.record_count() == 1
        tracker.feed(2, 10.5)  # within delta: not recorded
        assert tracker.record_count() == 1
