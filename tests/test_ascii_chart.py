"""Tests for the ASCII chart renderer."""

import pytest

from repro.eval.ascii_chart import render_chart


class TestRenderChart:
    def test_basic_shape(self):
        chart = render_chart(
            [1, 2, 3], {"a": [1, 2, 3], "b": [3, 2, 1]},
            width=30, height=8,
        )
        lines = chart.splitlines()
        assert len(lines) == 8 + 3  # grid + axis + x range + legend
        assert "o=a" in lines[-1]
        assert "x=b" in lines[-1]

    def test_marks_present(self):
        chart = render_chart([1, 10], {"s": [5, 50]}, log_x=True, log_y=True)
        assert "o" in chart
        assert "1e" in chart  # log-scale tick labels

    def test_drops_nonpositive_on_log_axis(self):
        chart = render_chart([1, 2], {"s": [0, 10]}, log_y=True)
        # The zero point vanishes; one mark remains in the grid (the
        # legend line also carries the mark, hence splitting it off).
        grid = "\n".join(chart.splitlines()[:-1])
        assert grid.count("o") == 1

    def test_constant_series(self):
        chart = render_chart([1, 2], {"s": [5, 5]})
        assert "o" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            render_chart([1, 2], {})
        with pytest.raises(ValueError):
            render_chart([1, 2], {"s": [1]})

    def test_all_unplottable(self):
        assert render_chart([0], {"s": [0]}, log_x=True, log_y=True) == (
            "(no plottable points)"
        )
