"""Tests for the exact frequency baseline."""

from repro.sketch.exact import ExactFrequency


class TestExactFrequency:
    def test_point_and_total(self):
        exact = ExactFrequency()
        exact.update_many([1, 2, 1, 3, 1])
        assert exact.point(1) == 3
        assert exact.point(2) == 1
        assert exact.point(9) == 0
        assert exact.total == 5
        assert len(exact) == 3

    def test_deletion_removes_key(self):
        exact = ExactFrequency()
        exact.update(1)
        exact.update(1, -1)
        assert exact.point(1) == 0
        assert len(exact) == 0

    def test_norms(self):
        exact = ExactFrequency()
        exact.update_many([1, 1, 2])
        assert exact.l1_norm() == 3
        assert exact.self_join_size() == 5  # 2^2 + 1^2

    def test_join_size_symmetry(self):
        a, b = ExactFrequency(), ExactFrequency()
        a.update_many([1, 1, 2, 3])
        b.update_many([1, 2, 2, 4])
        assert a.join_size(b) == b.join_size(a) == 2 * 1 + 1 * 2

    def test_heavy_hitters(self):
        exact = ExactFrequency()
        exact.update_many([1] * 60 + [2] * 30 + [3] * 10)
        heavy = exact.heavy_hitters(phi=0.25)
        assert set(heavy) == {1, 2}
        assert heavy[1] == 60

    def test_top_k(self):
        exact = ExactFrequency()
        exact.update_many([1] * 3 + [2] * 2 + [3])
        assert exact.top_k(2) == [(1, 3), (2, 2)]

    def test_items_iteration(self):
        exact = ExactFrequency()
        exact.update_many([5, 5, 6])
        assert dict(exact.items()) == {5: 2, 6: 1}
