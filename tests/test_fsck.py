"""Durability scrubber (``repro fsck``): detection, classification, repair.

Every kind of at-rest damage :class:`~repro.runtime.faults.FaultPlan`
can inject — bit-rot inside a sealed segment, truncated or deleted
checkpoints, a lost or garbled ``CHECKPOINT`` pointer, torn append
tails, orphaned staging directories — must be *detected* (never a clean
verdict), *classified* (the right ``SEG_*``/``CKPT_*``/``PTR_*``
verdict), and *accounted* (loss-free when the best intact checkpoint
covers the damage, an explicit lost-record ledger when it does not).
With ``repair=True`` the directory must afterwards be accepted by
:meth:`IngestRuntime.recover`, and scan-only passes must never mutate
anything.
"""

from __future__ import annotations

import json

import pytest

from repro.runtime import FaultPlan, IngestRuntime, run_fsck
from repro.runtime.fsck import (
    CKPT_UNREADABLE,
    PTR_CLEAN,
    PTR_CORRUPT,
    PTR_DANGLING,
    PTR_MISSING,
    SEG_CLEAN,
    SEG_CORRUPT,
    SEG_TORN_TAIL,
)
from tests.test_runtime_batch import make_raws, make_store

#: 110 clean records at checkpoint_every=25 leave: checkpoints ckpt-75 +
#: ckpt-100 (RETAINED_CHECKPOINTS=2), a sealed segment 76..100 fully
#: covered by the best checkpoint, and an active segment 101..110 whose
#: records only the WAL holds.
N_RECORDS = 110
CKPT_EVERY = 25


def build_directory(tmp_path, n=N_RECORDS):
    directory = tmp_path / "rt"
    runtime = IngestRuntime.create(
        directory, make_store(), checkpoint_every=CKPT_EVERY
    )
    for raw in make_raws(n=n, dirty=False):
        runtime.ingest(raw)
    runtime.close()
    return directory


def dir_fingerprint(directory):
    return {
        str(path.relative_to(directory)): path.read_bytes()
        for path in sorted(directory.rglob("*"))
        if path.is_file()
    }


def covered_segment(report):
    """The sealed segment wholly covered by the best checkpoint."""
    return report.segments[0]


def tail_segment(report):
    """The active segment carrying records beyond the best checkpoint."""
    return report.segments[-1]


# --------------------------------------------------------------------- #
# Clean directories and scan-only discipline
# --------------------------------------------------------------------- #


def test_clean_directory_reports_clean(tmp_path):
    directory = build_directory(tmp_path)
    report = run_fsck(directory)
    assert report.clean and report.recoverable and not report.data_loss
    assert report.best_covered_seq == 100
    assert report.replayable_through == N_RECORDS
    assert report.max_seq_seen == N_RECORDS
    assert report.actions == [] and not report.repaired
    assert report.scanned_records > 0 and report.scanned_bytes > 0
    assert all(seg.verdict == SEG_CLEAN for seg in report.segments)
    assert report.pointer.verdict == PTR_CLEAN
    assert report.summary().startswith("clean")
    # The report is JSON-ready end to end (the CLI prints it verbatim).
    assert json.loads(json.dumps(report.as_dict()))["clean"] is True


def test_scan_only_never_mutates(tmp_path):
    directory = build_directory(tmp_path)
    FaultPlan(flip_byte_in_segment=2, flip_byte_offset=10).apply_at_rest(
        directory
    )
    before = dir_fingerprint(directory)
    report = run_fsck(directory, repair=False)
    assert not report.clean
    assert dir_fingerprint(directory) == before


# --------------------------------------------------------------------- #
# Torn tails: unacknowledged, so repair is truncation, never loss
# --------------------------------------------------------------------- #


def test_torn_tail_classified_and_repaired(tmp_path):
    directory = build_directory(tmp_path)
    segments = sorted((directory / "wal").glob("segment-*.wal"))
    with open(segments[-1], "a", encoding="utf-8") as handle:
        handle.write('{"seq": 111, "crc": "torn-mid-ap')  # no newline
    report = run_fsck(directory)
    assert tail_segment(report).verdict == SEG_TORN_TAIL
    assert not report.data_loss, "a torn append was never acknowledged"
    assert report.replayable_through == N_RECORDS

    repaired = run_fsck(directory, repair=True)
    assert any("truncated torn tail" in a for a in repaired.actions)
    assert run_fsck(directory).clean
    recovered = IngestRuntime.recover(directory, checkpoint_every=CKPT_EVERY)
    assert recovered.applied_seq == N_RECORDS
    recovered.close()


# --------------------------------------------------------------------- #
# Mid-segment corruption: covered damage is loss-free, uncovered is not
# --------------------------------------------------------------------- #


def test_covered_corruption_is_loss_free(tmp_path):
    directory = build_directory(tmp_path)
    FaultPlan(flip_byte_in_segment=1, flip_byte_offset=10).apply_at_rest(
        directory
    )
    report = run_fsck(directory)
    assert covered_segment(report).verdict == SEG_CORRUPT
    assert not report.data_loss, "best checkpoint covers every damaged seq"
    assert report.replayable_through == N_RECORDS

    repaired = run_fsck(directory, repair=True)
    quarantines = [a for a in repaired.actions if "quarantined" in a]
    assert quarantines and "loss-free" in quarantines[0]
    assert (directory / "quarantine").is_dir(), "damage kept for forensics"
    recovered = IngestRuntime.recover(directory, checkpoint_every=CKPT_EVERY)
    assert recovered.applied_seq == N_RECORDS
    recovered.close()


def test_uncovered_corruption_reports_explicit_loss(tmp_path):
    directory = build_directory(tmp_path)
    FaultPlan(flip_byte_in_segment=2, flip_byte_offset=10).apply_at_rest(
        directory
    )
    report = run_fsck(directory)
    assert tail_segment(report).verdict == SEG_CORRUPT
    assert report.data_loss
    assert report.unknown_damaged_frames == 1  # the flipped frame itself
    assert report.lost_records == 9  # decodable seqs 102..110, unreplayable
    assert report.replayable_through == 100
    assert "DATA LOSS" in report.summary()

    repaired = run_fsck(directory, repair=True)
    assert any("LOSES acknowledged records" in a for a in repaired.actions)
    # Repair leaves a recoverable directory; the loss stays explicit.
    recovered = IngestRuntime.recover(
        directory, checkpoint_every=CKPT_EVERY, acknowledge_data_loss=True
    )
    assert recovered.applied_seq == 100
    recovered.close()


def test_missing_covered_segment_is_loss_free(tmp_path):
    """A vanished segment wholly under the checkpoint severs nothing."""
    directory = build_directory(tmp_path)
    segments = sorted((directory / "wal").glob("segment-*.wal"))
    segments[0].unlink()
    report = run_fsck(directory)
    assert not report.data_loss
    assert report.replayable_through == N_RECORDS


# --------------------------------------------------------------------- #
# Checkpoint damage: fall back to the best intact snapshot
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("delete", [False, True], ids=["truncate", "delete"])
def test_damaged_best_checkpoint_falls_back(tmp_path, delete):
    directory = build_directory(tmp_path)
    n_ckpts = len(sorted((directory / "checkpoints").glob("ckpt-*")))
    plan = (
        FaultPlan(delete_checkpoint_at_rest=n_ckpts)
        if delete
        else FaultPlan(truncate_checkpoint_at_rest=n_ckpts)
    )
    plan.apply_at_rest(directory)
    report = run_fsck(directory)
    assert report.best_covered_seq == 75, "fsck fell back to ckpt-75"
    assert report.pointer.verdict == PTR_DANGLING
    if not delete:
        assert any(
            c.verdict == CKPT_UNREADABLE for c in report.checkpoints
        )
    # Replay from ckpt-75 reaches every durable record: loss-free.
    assert not report.data_loss
    assert report.replayable_through == N_RECORDS

    repaired = run_fsck(directory, repair=True)
    assert any("rewrote pointer" in a for a in repaired.actions)
    assert repaired.pointer.verdict == PTR_CLEAN
    recovered = IngestRuntime.recover(directory, checkpoint_every=CKPT_EVERY)
    assert recovered.applied_seq == N_RECORDS
    recovered.close()


# --------------------------------------------------------------------- #
# Pointer damage
# --------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "plan, verdict",
    [
        (FaultPlan(delete_pointer_at_rest=True), PTR_MISSING),
        (FaultPlan(corrupt_pointer_at_rest=True), PTR_CORRUPT),
    ],
    ids=["missing", "corrupt"],
)
def test_pointer_damage_classified_and_rewritten(tmp_path, plan, verdict):
    directory = build_directory(tmp_path)
    plan.apply_at_rest(directory)
    report = run_fsck(directory)
    assert report.pointer.verdict == verdict
    assert not report.data_loss

    repaired = run_fsck(directory, repair=True)
    assert repaired.pointer.verdict == PTR_CLEAN
    assert repaired.pointer.checkpoint == "ckpt-000000000100"
    recovered = IngestRuntime.recover(directory, checkpoint_every=CKPT_EVERY)
    assert recovered.applied_seq == N_RECORDS
    recovered.close()


def test_orphan_staging_swept(tmp_path):
    directory = build_directory(tmp_path)
    staging = directory / "checkpoints" / ".ckpt-000000000123.saving.42"
    staging.mkdir()
    (staging / "half.json.gz").write_bytes(b"partial")
    report = run_fsck(directory)
    assert report.orphan_staging == [staging.name]
    assert not report.clean
    run_fsck(directory, repair=True)
    assert not staging.exists()
    assert run_fsck(directory).clean


# --------------------------------------------------------------------- #
# Acceptance: 100% detection across every injectable at-rest fault
# --------------------------------------------------------------------- #

AT_REST_PLANS = {
    "flip-covered": FaultPlan(flip_byte_in_segment=1, flip_byte_offset=10),
    "flip-tail": FaultPlan(flip_byte_in_segment=2, flip_byte_offset=10),
    "flip-last-byte": FaultPlan(flip_byte_in_segment=2, flip_byte_offset=-2),
    "truncate-ckpt": FaultPlan(truncate_checkpoint_at_rest=2),
    "delete-ckpt": FaultPlan(delete_checkpoint_at_rest=2),
    "delete-pointer": FaultPlan(delete_pointer_at_rest=True),
    "corrupt-pointer": FaultPlan(corrupt_pointer_at_rest=True),
}


@pytest.mark.parametrize("name", sorted(AT_REST_PLANS))
def test_every_injected_corruption_is_detected(tmp_path, name):
    directory = build_directory(tmp_path)
    actions = AT_REST_PLANS[name].apply_at_rest(directory)
    assert actions, "the fault plan must actually damage something"
    report = run_fsck(directory)
    assert not report.clean, f"{name}: damage went undetected"
    assert report.recoverable, f"{name}: repair should stay possible"
    # Repair always yields a directory recover() accepts.
    run_fsck(directory, repair=True)
    recovered = IngestRuntime.recover(
        directory, checkpoint_every=CKPT_EVERY, acknowledge_data_loss=True
    )
    assert recovered.applied_seq >= 100
    recovered.close()


def test_unrecoverable_when_no_checkpoint_deserializes(tmp_path):
    directory = build_directory(tmp_path)
    n_ckpts = len(sorted((directory / "checkpoints").glob("ckpt-*")))
    for ordinal in range(1, n_ckpts + 1):
        FaultPlan(truncate_checkpoint_at_rest=ordinal).apply_at_rest(
            directory
        )
    report = run_fsck(directory)
    assert not report.recoverable and not report.clean
    assert report.best_covered_seq is None
    assert "NO RECOVERABLE CHECKPOINT" in report.summary()
