"""Serialization round trips for the epoch-adaptive historical sketches."""

import pytest

from repro.core.historical_ams import HistoricalAMS
from repro.core.historical_countmin import HistoricalCountMin
from repro.io import from_dict, load, save, to_dict
from repro.streams.generators import zipf_stream
from repro.streams.truth import GroundTruth


@pytest.fixture(scope="module")
def stream():
    return zipf_stream(4000, universe=2**16, exponent=1.8, seed=131)


@pytest.fixture(scope="module")
def truth(stream):
    return GroundTruth(stream)


class TestHistoricalCountMin:
    def test_round_trip_answers(self, stream, truth, tmp_path):
        original = HistoricalCountMin(width=512, depth=4, eps=0.02, seed=3)
        original.ingest(stream)
        restored = load(save(original, tmp_path / "hcm.json.gz"))
        assert restored.epoch_count() == original.epoch_count()
        for item, _ in truth.top_k(15):
            for t in (500, 2000, 4000):
                assert restored.point(item, t=t) == pytest.approx(
                    original.point(item, t=t), abs=1e-9
                )

    def test_continued_ingest(self, stream, tmp_path):
        original = HistoricalCountMin(width=256, depth=3, eps=0.05, seed=3)
        original.ingest(stream)
        restored = load(save(original, tmp_path / "hcm2.json"))
        hot = int(stream.items[0])
        for t in range(4001, 4101):
            restored.update(hot, time=t)
        after = restored.point(hot, t=4100)
        before = restored.point(hot, t=4000)
        assert after >= before + 100 - 4 * 0.05 * 4100 - 2


class TestHistoricalAMS:
    def test_round_trip_answers(self, stream, truth, tmp_path):
        original = HistoricalAMS(
            width=512, depth=4, eps=0.05, seed=3, expected_length=4000
        )
        original.ingest(stream)
        restored = load(save(original, tmp_path / "hams.json.gz"))
        assert restored.epoch_count() == original.epoch_count()
        for t in (1000, 4000):
            assert restored.self_join_size(t=t) == pytest.approx(
                original.self_join_size(t=t)
            )
        for item, _ in truth.top_k(10):
            assert restored.point(item, t=4000) == pytest.approx(
                original.point(item, t=4000), abs=1e-9
            )

    def test_rng_continuity(self, tmp_path):
        base = HistoricalAMS(
            width=64, depth=3, eps=0.1, seed=5, expected_length=400
        )
        for t in range(1, 201):
            base.update(t % 13, time=t)
        doc = to_dict(base)
        a, b = from_dict(doc), from_dict(doc)
        for t in range(201, 401):
            a.update(t % 13, time=t)
            b.update(t % 13, time=t)
        assert a.persistence_words() == b.persistence_words()
        assert a.self_join_size(t=400) == b.self_join_size(t=400)

    def test_epoch_state_preserved(self, stream, tmp_path):
        original = HistoricalAMS(
            width=256, depth=3, eps=0.05, seed=7, expected_length=4000
        )
        original.ingest(stream)
        restored = load(save(original, tmp_path / "h3.json"))
        assert restored._probability == original._probability
        assert (
            restored._epochs.current.start_norm
            == original._epochs.current.start_norm
        )
