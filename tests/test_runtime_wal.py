"""Tests for the write-ahead log: framing, torn tails, rotation, pruning."""

import pytest

from repro.runtime.faults import FaultPlan, SimulatedCrash
from repro.runtime.wal import WalCorruption, WriteAheadLog, _decode_line, _encode_line


def _record(seq_less=None, stream="s", item=1, count=1, time=1):
    return {"stream": stream, "item": item, "count": count, "time": time}


class TestFraming:
    def test_roundtrip(self):
        record = {"seq": 7, "stream": "urls", "item": 3, "count": 1, "time": 9}
        assert _decode_line(_encode_line(record)) == record

    def test_bad_crc_rejected(self):
        line = _encode_line({"seq": 1, "item": 2})
        tampered = line.replace('"item":2', '"item":3')
        assert _decode_line(tampered) is None

    def test_truncated_line_rejected(self):
        line = _encode_line({"seq": 1, "item": 2})
        assert _decode_line(line[: len(line) // 2]) is None
        assert _decode_line("") is None
        assert _decode_line("garbage") is None


class TestAppendReplay:
    def test_append_assigns_contiguous_seqs(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        seqs = [wal.append(_record(time=t)) for t in range(1, 6)]
        assert seqs == [1, 2, 3, 4, 5]
        replayed = list(wal.replay(0))
        assert [r["seq"] for r in replayed] == seqs
        assert replayed[0]["stream"] == "s"

    def test_replay_after_floor(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        for t in range(1, 11):
            wal.append(_record(time=t))
        assert [r["seq"] for r in wal.replay(7)] == [8, 9, 10]

    def test_torn_tail_dropped(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        for t in range(1, 4):
            wal.append(_record(time=t))
        wal.close()
        segment = wal.segments()[0][1]
        with open(segment, "a") as handle:
            handle.write('deadbeef {"seq":4,"stream":"s","it')  # torn
        assert [r["seq"] for r in WriteAheadLog(tmp_path).replay(0)] == [1, 2, 3]

    def test_damage_mid_segment_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        for t in range(1, 4):
            wal.append(_record(time=t))
        wal.close()
        segment = wal.segments()[0][1]
        lines = segment.read_text().splitlines(keepends=True)
        lines[1] = "corrupted line\n"
        with open(segment, "w") as handle:
            handle.writelines(lines)
        with pytest.raises(WalCorruption):
            list(WriteAheadLog(tmp_path).replay(0))

    def test_sequence_gap_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(_record(time=1))
        wal.close()
        wal2 = WriteAheadLog(tmp_path, next_seq=5)
        wal2.append(_record(time=2))
        with pytest.raises(WalCorruption):
            list(WriteAheadLog(tmp_path).replay(0))

    def test_scripted_torn_write_crashes_after_partial_line(self, tmp_path):
        plan = FaultPlan(torn_write_at_record=2)
        wal = WriteAheadLog(tmp_path, faults=plan)
        plan.next_record()
        wal.append(_record(time=1))
        plan.next_record()
        with pytest.raises(SimulatedCrash):
            wal.append(_record(time=2))
        # The torn tail is dropped; record 1 survives.
        assert [r["seq"] for r in WriteAheadLog(tmp_path).replay(0)] == [1]


class TestRotationPruning:
    def test_rotate_starts_new_segment(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(_record(time=1))
        wal.rotate()
        wal.append(_record(time=2))
        starts = [start for start, _path in wal.segments()]
        assert starts == [1, 2]
        assert [r["seq"] for r in wal.replay(0)] == [1, 2]

    def test_prune_keeps_uncovered_segments(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        for t in range(1, 4):
            wal.append(_record(time=t))
        wal.rotate()
        for t in range(4, 7):
            wal.append(_record(time=t))
        wal.rotate()
        wal.append(_record(time=7))
        # Everything through seq 6 is covered by a checkpoint.
        removed = wal.prune(6)
        assert len(removed) == 2
        assert [start for start, _path in wal.segments()] == [7]
        assert [r["seq"] for r in wal.replay(6)] == [7]

    def test_prune_never_removes_active_tail(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        for t in range(1, 4):
            wal.append(_record(time=t))
        assert wal.prune(3) == []
        assert [r["seq"] for r in wal.replay(0)] == [1, 2, 3]
