"""Chaos matrix: every injectable fault x every subsystem, end to end.

ISSUE 7's acceptance harness.  Each cell drives one
:class:`~repro.runtime.faults.FaultPlan` fault through the full stack —
WAL + checkpoint durability, the fsck scrubber, the health state
machine, and the self-healing worker pool — and asserts one of exactly
two outcomes:

* **full recovery**: the surviving runtime answers bit-identically to
  an uninterrupted serial twin, or
* **clean degradation**: the runtime is ``DEGRADED_READONLY`` with the
  right cause, still serves queries (whose answers match the twin at
  the acknowledged prefix), refuses writes with a typed
  :class:`DegradedError`, and resumes exactly where it left off once
  the operator acknowledges.

Never a third outcome — in particular, never a *wrong* answer.

Run with ``-m chaos`` (CI runs the matrix under ``REPRO_CONTRACTS=1``).
"""

from __future__ import annotations

import pytest

from repro.parallel import fork_available, pool_faults
from repro.runtime import (
    DegradedError,
    FaultPlan,
    IngestPolicy,
    IngestRuntime,
    SimulatedCrash,
)
from tests.test_runtime_recovery import (
    CHECKPOINT_EVERY,
    assert_identical_answers,
    make_records,
    make_store,
    run_uninterrupted,
)

pytestmark = pytest.mark.chaos

N_RECORDS = 260  # == len(make_records()); checkpoints land every 50

#: Layout after a clean 260-record run at cadence 50 (verified by
#: ``test_fsck``): retained checkpoints ckpt-200 + ckpt-250, WAL segment
#: 1 holds seqs 201..250 (fully covered by the best checkpoint), segment
#: 2 holds the tail 251..260 that only the WAL knows.
COVERED_SEGMENT = 1
TAIL_SEGMENT = 2
BEST_COVERED_SEQ = 250


def build_victim(root, records, **kwargs):
    runtime = IngestRuntime.create(
        root / "victim",
        make_store(),
        checkpoint_every=CHECKPOINT_EVERY,
        sleep=lambda _t: None,
        **kwargs,
    )
    for raw in records:
        runtime.ingest(raw)
    runtime.close()
    return root / "victim"


def recover(directory, **kwargs):
    return IngestRuntime.recover(
        directory, checkpoint_every=CHECKPOINT_EVERY, **kwargs
    )


# --------------------------------------------------------------------- #
# At-rest damage: fsck-led recovery
# --------------------------------------------------------------------- #

#: Cells whose damage never touches an acknowledged record that only the
#: WAL holds: recovery must be silently loss-free and bit-identical.
LOSS_FREE_AT_REST = {
    "flip-covered-segment": FaultPlan(
        flip_byte_in_segment=COVERED_SEGMENT, flip_byte_offset=10
    ),
    "truncate-best-checkpoint": FaultPlan(truncate_checkpoint_at_rest=2),
    "delete-best-checkpoint": FaultPlan(delete_checkpoint_at_rest=2),
    "delete-pointer": FaultPlan(delete_pointer_at_rest=True),
    "corrupt-pointer": FaultPlan(corrupt_pointer_at_rest=True),
}


@pytest.mark.parametrize("cell", sorted(LOSS_FREE_AT_REST))
def test_loss_free_at_rest_damage_recovers_bit_identically(tmp_path, cell):
    records = make_records()
    twin = run_uninterrupted(tmp_path, records)
    directory = build_victim(tmp_path, records)
    actions = LOSS_FREE_AT_REST[cell].apply_at_rest(directory)
    assert actions, f"{cell}: the plan must actually damage something"

    recovered = recover(directory)
    assert recovered.health()["state"] == "healthy"
    assert recovered.applied_seq == N_RECORDS
    assert_identical_answers(twin, recovered)


def test_torn_tail_at_rest_recovers_bit_identically(tmp_path):
    records = make_records()
    twin = run_uninterrupted(tmp_path, records)
    directory = build_victim(tmp_path, records)
    segments = sorted((directory / "wal").glob("segment-*.wal"))
    with open(segments[-1], "a", encoding="utf-8") as handle:
        handle.write('{"seq": 261, "crc": "torn-mid')  # no newline

    recovered = recover(directory)
    assert recovered.health()["state"] == "healthy"
    assert recovered.applied_seq == N_RECORDS, "a torn frame was never acked"
    assert_identical_answers(twin, recovered)


def test_uncovered_corruption_degrades_then_acknowledge_resumes(tmp_path):
    """The only at-rest cell with real loss: bit-rot in WAL frames the
    best checkpoint does not cover.  fsck quarantines, recovery comes up
    degraded read-only at the last trustworthy prefix, queries still
    answer (and answer *right*), and acknowledging the loss reopens
    writes exactly at the quarantine point."""
    records = make_records()
    prefix_twin = run_uninterrupted(tmp_path, records[:BEST_COVERED_SEQ])
    directory = build_victim(tmp_path, records)
    FaultPlan(
        flip_byte_in_segment=TAIL_SEGMENT, flip_byte_offset=10
    ).apply_at_rest(directory)

    recovered = recover(directory)
    health = recovered.health()
    assert health["state"] == "degraded-readonly"
    assert health["cause"] == "wal-quarantined"
    assert not health["recoverable"], "data loss must not self-heal"
    assert recovered.applied_seq == BEST_COVERED_SEQ
    assert recovered.fsck_report.data_loss

    # Still serving — and serving the *right* answers for the prefix.
    assert_identical_answers(prefix_twin, recovered)
    # But refusing writes with the typed error naming the cause.
    with pytest.raises(DegradedError, match="wal-quarantined"):
        recovered.ingest(records[BEST_COVERED_SEQ])

    # Operator accepts the loss; the client re-sends the unacked tail.
    recovered.acknowledge_data_loss()
    for raw in records[BEST_COVERED_SEQ:]:
        assert recovered.ingest(raw) is True
    assert recovered.health()["state"] == "healthy"
    full_twin = run_uninterrupted(tmp_path / "full", records)
    assert_identical_answers(full_twin, recovered)


# --------------------------------------------------------------------- #
# Crash faults: process death at the worst moments
# --------------------------------------------------------------------- #

CRASH_CELLS = {
    "crash-before-append": FaultPlan(crash_before_record=130),
    "torn-live-write": FaultPlan(torn_write_at_record=130),
    "crash-after-durable": FaultPlan(crash_after_record=130),
    "crash-mid-checkpoint": FaultPlan(crash_at_checkpoint=3),
    "truncate-committed-snapshot": FaultPlan(truncate_snapshot_at_checkpoint=3),
}


@pytest.mark.parametrize("cell", sorted(CRASH_CELLS))
def test_crash_cells_recover_bit_identically(tmp_path, cell):
    records = make_records()
    twin = run_uninterrupted(tmp_path, records)
    victim = IngestRuntime.create(
        tmp_path / "victim",
        make_store(),
        checkpoint_every=CHECKPOINT_EVERY,
        faults=CRASH_CELLS[cell],
        sleep=lambda _t: None,
    )
    crashed = False
    for raw in records:
        try:
            victim.ingest(raw)
        except SimulatedCrash:
            crashed = True
            break
    assert crashed, f"{cell}: fault never fired"

    recovered = recover(tmp_path / "victim")
    assert recovered.health()["state"] == "healthy"
    for raw in records[recovered.applied_seq :]:
        assert recovered.ingest(raw) is True
    assert_identical_answers(twin, recovered)


# --------------------------------------------------------------------- #
# Crash-mid-buffer: staged updates die with the process, the WAL wins
# --------------------------------------------------------------------- #

#: Window 37 never divides the crash seq (130) or the checkpoint cadence
#: (50), so every cell dies with records staged in the update buffer.
BUFFER_WINDOW = 37

EXACT_BUFFER_CRASH_CELLS = {
    "exact-crash-mid-window": FaultPlan(crash_after_record=130),
    "exact-torn-write-mid-window": FaultPlan(torn_write_at_record=130),
    "exact-crash-mid-checkpoint": FaultPlan(crash_at_checkpoint=2),
}


@pytest.mark.parametrize("cell", sorted(EXACT_BUFFER_CRASH_CELLS))
def test_crash_mid_buffer_exact_recovers_bit_identically(tmp_path, cell):
    """ISSUE 10's chaos cells: kill the process while the update buffer
    holds staged records.  Every buffered record was WAL-durable before
    it was staged, so the in-memory window dies with the process and
    unbuffered replay restores exactly what an unbuffered twin holds —
    buffering below the ack line costs zero durability."""
    records = make_records()
    twin = run_uninterrupted(tmp_path, records)
    victim = IngestRuntime.create(
        tmp_path / "victim",
        make_store(),
        checkpoint_every=CHECKPOINT_EVERY,
        faults=EXACT_BUFFER_CRASH_CELLS[cell],
        sleep=lambda _t: None,
        buffer_window=BUFFER_WINDOW,
        buffer_mode="exact",
    )
    crashed = False
    for raw in records:
        try:
            victim.ingest(raw)
        except SimulatedCrash:
            crashed = True
            break
    assert crashed, f"{cell}: fault never fired"

    recovered = recover(
        tmp_path / "victim",
        buffer_window=BUFFER_WINDOW,
        buffer_mode="exact",
    )
    assert recovered.health()["state"] == "healthy"
    for raw in records[recovered.applied_seq :]:
        assert recovered.ingest(raw) is True
    recovered.store.flush_buffers()
    assert_identical_answers(twin, recovered)


def test_crash_mid_buffer_coalesce_before_checkpoint_is_loss_free(tmp_path):
    """Coalesce mode crash before any checkpoint: the WAL holds the raw
    uncoalesced records, so replay restores the *exact* history — more
    faithful than the crashed run's lossy in-memory trajectory ever was.
    """
    records = make_records()
    twin = run_uninterrupted(tmp_path, records)
    victim = IngestRuntime.create(
        tmp_path / "victim",
        make_store(),
        checkpoint_every=10_000,  # the crash lands before checkpoint 1
        faults=FaultPlan(crash_after_record=130),
        sleep=lambda _t: None,
        buffer_window=BUFFER_WINDOW,
        buffer_mode="coalesce",
    )
    crashed = False
    for raw in records:
        try:
            victim.ingest(raw)
        except SimulatedCrash:
            crashed = True
            break
    assert crashed, "fault never fired"

    recovered = recover(tmp_path / "victim")
    assert recovered.health()["state"] == "healthy"
    for raw in records[recovered.applied_seq :]:
        assert recovered.ingest(raw) is True
    assert_identical_answers(twin, recovered)


def test_crash_mid_buffer_coalesce_after_checkpoint_stays_in_bounds(tmp_path):
    """Coalesce mode crash *after* checkpoints: the snapshots embed the
    coalesced (lossy) trajectory, so recovery is not bit-identical to an
    exact twin — but it must be deterministic, loss-free in net mass,
    and inside the documented widened envelope at the flush boundary
    (every counter's last touch carries its exact cumulative value, so
    full-range answers differ from exact only by the +/-delta PLA
    recording error on each endpoint)."""
    records = make_records()
    twin = run_uninterrupted(tmp_path, records)
    victim = IngestRuntime.create(
        tmp_path / "victim",
        make_store(),
        checkpoint_every=CHECKPOINT_EVERY,
        faults=FaultPlan(crash_after_record=130),
        sleep=lambda _t: None,
        buffer_window=BUFFER_WINDOW,
        buffer_mode="coalesce",
    )
    crashed = False
    for raw in records:
        try:
            victim.ingest(raw)
        except SimulatedCrash:
            crashed = True
            break
    assert crashed, "fault never fired"

    recovered = recover(tmp_path / "victim")
    assert recovered.health()["state"] == "healthy"
    for raw in records[recovered.applied_seq :]:
        assert recovered.ingest(raw) is True

    # Determinism: a second recovery of the same directory (replaying
    # only the durable prefix) lands on the same applied_seq and the
    # same answers for that prefix as the first recovery did.
    twin_b = recover(tmp_path / "victim")
    assert twin_b.applied_seq >= 130

    # Envelope: full-range point answers stay within the documented
    # per-endpoint PLA delta (4 for this store) of the exact twin.
    t = twin.clock("urls")
    assert recovered.clock("urls") == t
    for item in range(0, 64, 7):
        exact = twin.store.point("urls", item, 0, t)
        lossy = recovered.store.point("urls", item, 0, t)
        assert abs(lossy - exact) <= 2 * 4, (item, lossy, exact)


# --------------------------------------------------------------------- #
# Resource exhaustion: degrade, probe, heal, resume
# --------------------------------------------------------------------- #


def test_enospc_degrades_heals_and_loses_nothing(tmp_path):
    """Snapshot I/O hits ENOSPC past the retry budget: the runtime flips
    degraded read-only but keeps every durable record; once the probe
    sees the disk back, writes resume and the on-disk state recovers to
    exactly the live answers."""
    records = make_records()
    victim = IngestRuntime.create(
        tmp_path / "victim",
        make_store(),
        checkpoint_every=CHECKPOINT_EVERY,
        faults=FaultPlan(
            io_error_at_checkpoint=1, io_error_count=2, io_error_enospc=True
        ),
        policy=IngestPolicy(max_retries=1),  # both injected errors exhaust it
        sleep=lambda _t: None,
        probe=lambda: True,
    )
    victim.monitor.probe_interval = 1
    victim.monitor.heal_after = 2
    rejections = 0
    for raw in records:
        for _attempt in range(10):
            try:
                victim.ingest(raw)
                break
            except DegradedError as exc:
                assert exc.cause == "disk-full"
                rejections += 1
        else:
            pytest.fail("degradation never healed through the probe")
    assert rejections > 0, "the ENOSPC window must actually reject writes"
    assert victim.health()["state"] == "healthy"
    assert victim.health()["heals"] == 1
    assert victim.applied_seq == N_RECORDS

    # Durability equivalence: the recovered incarnation answers exactly
    # like the live one that weathered the outage.
    victim.close()
    recovered = recover(tmp_path / "victim")
    assert recovered.applied_seq == N_RECORDS
    assert_identical_answers(victim, recovered)


# --------------------------------------------------------------------- #
# Worker-pool faults: heal in place, never a wrong answer
# --------------------------------------------------------------------- #

needs_fork = pytest.mark.skipif(not fork_available(), reason="needs os.fork")

POOL_CELLS = {
    "worker-sigkilled": FaultPlan(pool_kill_worker=0, pool_kill_at_batch=2),
    "worker-hung": FaultPlan(
        pool_hang_worker=0,
        pool_hang_at_batch=2,
        pool_hang_seconds=30.0,
        pool_reply_deadline_s=0.2,
    ),
    "respawn-exhausted-serial-fallback": FaultPlan(
        pool_kill_worker=0, pool_kill_at_batch=2, pool_fail_respawns=99
    ),
}


# --------------------------------------------------------------------- #
# Serving daemon: crash/restart under concurrent client load
# --------------------------------------------------------------------- #


def test_server_crash_under_load_restarts_bit_identically(tmp_path):
    """ISSUE 8's serving cell: kill the daemon mid-ingest while reader
    clients hammer it, restart over the recovered runtime, re-send the
    unacknowledged tail through the server, and the served answers must
    be bit-identical to an uninterrupted twin.

    One deterministic writer keeps the WAL/checkpoint interleaving
    reproducible; the three concurrent readers add the load (and must
    see only correct answers or dead connections — never wrong ones).
    """
    import threading

    from repro.server import Client, ServingRuntime, SketchServer

    records = make_records()
    twin = run_uninterrupted(tmp_path, records)

    victim = IngestRuntime.create(
        tmp_path / "victim",
        make_store(),
        checkpoint_every=CHECKPOINT_EVERY,
        faults=FaultPlan(crash_after_record=130),
        sleep=lambda _t: None,
    )
    server = SketchServer(
        ServingRuntime(victim), cutover_poll_s=0.05
    ).start()
    host, port = server.address

    stop = threading.Event()
    reader_errors: list[BaseException] = []

    def reader(item):
        try:
            with Client(host, port, timeout=5.0) as c:
                while not stop.is_set():
                    c.point("urls", item)
                    c.health()
        except (ConnectionError, OSError):
            pass  # the daemon died under us — expected in this cell
        except BaseException as exc:  # noqa: B036  # sketchlint: disable=SL004 — collected and re-asserted on the main thread
            reader_errors.append(exc)

    readers = [
        threading.Thread(target=reader, args=(item,)) for item in range(3)
    ]
    for thread in readers:
        thread.start()

    acked = 0
    crashed = False
    with Client(host, port, timeout=5.0) as writer:
        for raw in records:
            try:
                assert writer.ingest_record(raw) is True
                acked += 1
            except ConnectionError:
                crashed = True
                break
    stop.set()
    for thread in readers:
        thread.join(timeout=30)
    assert crashed, "the scripted crash never fired"
    assert server.crashed is True
    assert not reader_errors, reader_errors
    assert acked == 129  # record 130 was durable but never acknowledged

    # Restart over the recovered directory, exactly as `repro serve
    # --resume` would, and finish the workload through the server.
    recovered = recover(tmp_path / "victim")
    restarted = SketchServer(
        ServingRuntime(recovered), cutover_poll_s=0.05
    ).start()
    try:
        host2, port2 = restarted.address
        with Client(host2, port2, timeout=5.0) as c:
            applied = c.describe()["applied_seq"]
            assert applied >= acked
            for raw in records[applied:]:
                assert c.ingest_record(raw) is True
            assert c.describe()["applied_seq"] == N_RECORDS
            assert c.health()["state"] == "healthy"
            # Served answers match the twin on both routing sides.
            assert c.cutover()["view_seq"] is not None
            t = twin.clock("urls")
            for item in range(0, 64, 7):
                want = twin.store.point("urls", item, 0, t)
                assert c.point("urls", item, 0, t, mode="live") == want
            fc = restarted.serving.view().clock("urls")
            for item in range(0, 64, 7):
                want = twin.store.point("urls", item, 0, fc)
                assert c.point("urls", item, 0, fc, mode="frozen") == want
    finally:
        restarted.stop()
    # The full embedded-API equivalence sweep, sketch family by family.
    assert_identical_answers(twin, recovered)


@needs_fork
@pytest.mark.parametrize("cell", sorted(POOL_CELLS))
def test_pool_cells_heal_and_stay_bit_identical(tmp_path, cell):
    records = make_records()
    twin = run_uninterrupted(tmp_path, records)
    victim = IngestRuntime.create(
        tmp_path / "victim",
        make_store(),
        checkpoint_every=CHECKPOINT_EVERY,
        sleep=lambda _t: None,
        workers=2,
    )
    with pool_faults(POOL_CELLS[cell]):
        for lo in range(0, len(records), 40):
            victim.ingest_batch(records[lo : lo + 40])
    victim.store.drain_workers()
    assert victim.health()["state"] == "healthy", "pool faults heal in place"
    assert victim.applied_seq == N_RECORDS
    assert_identical_answers(twin, victim)

    # And the WAL saw every batch: recovery lands on the same answers.
    victim.close()
    recovered = recover(tmp_path / "victim")
    assert recovered.applied_seq == N_RECORDS
    assert_identical_answers(twin, recovered)


# --------------------------------------------------------------------- #
# Shared-memory serving: reader death and cutover races leak nothing
# --------------------------------------------------------------------- #


def _shm_ready() -> bool:
    from repro import shm

    return fork_available() and shm.shm_available()


@needs_fork
def test_sigkilled_query_worker_leaks_no_segments(tmp_path):
    """Chaos cell: kill -9 an shm-attached query worker mid-serving.

    Query workers only ever *attach* to the published view segment (the
    publisher owns every unlink), so a reader dying at any point must
    not orphan a ``/dev/shm`` entry.  The supervisor respawns the slot,
    answers stay bit-identical throughout (local-view fallback covers
    the dead-slot query), and after serving shutdown the /dev/shm
    listing for this module's prefix must be empty.
    """
    import os
    import signal

    from repro import shm
    from repro.server import ServingRuntime

    if not _shm_ready():
        pytest.skip("needs POSIX shared memory")

    records = make_records()
    runtime = IngestRuntime.create(
        tmp_path / "victim",
        make_store(),
        checkpoint_every=CHECKPOINT_EVERY,
        sleep=lambda _t: None,
    )
    serving = ServingRuntime(runtime, query_workers=2)
    try:
        serving.ingest_batch(records)
        assert serving.maybe_cutover(force=True)["swapped"]
        view = serving.view()
        assert view.segment is not None, "cutover must publish a segment"
        t = view.clock("urls")

        def frozen_answers():
            return [
                serving.point("urls", item, 0, t) for item in range(0, 64, 7)
            ]

        before = frozen_answers()
        live = [
            serving.point("urls", item, 0, t, mode="live")
            for item in range(0, 64, 7)
        ]
        assert before == live  # frozen==live gate before the fault

        pool = serving.query_pool()
        assert pool is not None
        victim_pid = pool.pids[0]
        os.kill(victim_pid, signal.SIGKILL)
        # Every answer across the dead-worker window stays bit-equal:
        # the supervisor either respawns the slot or the master serves
        # that query from its local view.
        for _ in range(4):
            assert frozen_answers() == before
        assert pool.respawns >= 1, "the dead slot was never respawned"
        assert victim_pid not in pool.pids
    finally:
        serving.close()
    # The supervisor swept everything: no orphaned /dev/shm entries.
    assert shm.leaked_segments() == []


@needs_fork
def test_cutover_racing_attached_reader_keeps_old_view_valid(tmp_path):
    """Chaos cell: cutover unlinks the old segment under a live reader.

    POSIX keeps an unlinked segment valid until the last attacher
    detaches, so a reader that attached generation N must keep getting
    bit-identical answers while the publisher cuts over to N+1 and
    releases N — and the /dev/shm *name* must be gone immediately (no
    window where a crashed publisher would leak it).
    """
    from repro import shm
    from repro.engine import attach_view
    from repro.server import ServingRuntime

    if not _shm_ready():
        pytest.skip("needs POSIX shared memory")

    records = make_records()
    runtime = IngestRuntime.create(
        tmp_path / "victim",
        make_store(),
        checkpoint_every=CHECKPOINT_EVERY,
        sleep=lambda _t: None,
    )
    serving = ServingRuntime(runtime, query_workers=1)
    old_segment = None
    try:
        serving.ingest_batch(records[:200])
        assert serving.maybe_cutover(force=True)["swapped"]
        old_view = serving.view()
        assert old_view.segment is not None
        old_name = old_view.segment.name
        t_old = old_view.clock("urls")
        want = [
            old_view.frozen.point("urls", item, 0, t_old)
            for item in range(0, 64, 7)
        ]

        # The racing reader: attached to generation N as the publisher
        # moves on.
        reader_view, old_segment = attach_view(old_name)

        serving.ingest_batch(records[200:])
        assert serving.maybe_cutover(force=True)["swapped"]
        assert serving.view().generation == old_view.generation + 1

        # The old name is unlinked the moment the swap lands...
        assert old_name not in shm.leaked_segments()
        # ...but the attached reader's mapping stays fully readable and
        # bit-identical until it detaches.
        got = [
            reader_view.point("urls", item, 0, t_old)
            for item in range(0, 64, 7)
        ]
        assert got == want
    finally:
        if old_segment is not None:
            old_segment.close()
        serving.close()
    assert shm.leaked_segments() == []
