"""Tests for the anchored (suboptimal) swing-filter PLA."""

import numpy as np
import pytest

from repro.pla.orourke import OnlinePLA
from repro.pla.swing import SwingPLA


def random_walk_points(n=2000, p=0.4, seed=0):
    rng = np.random.default_rng(seed)
    points, v = [], 0.0
    for t in range(1, n + 1):
        v += float(rng.choice([-1, 0, 1], p=[p / 2, 1 - p, p / 2]))
        points.append((t, v))
    return points


class TestCorrectness:
    def test_all_points_within_delta(self):
        delta = 3.0
        swing = SwingPLA(delta=delta)
        points = random_walk_points(seed=1)
        for t, v in points:
            swing.feed(t, v)
        fn = swing.finalize()
        for t, v in points:
            assert abs(fn.value_at(t) - v) <= delta + 1e-6

    def test_single_point(self):
        swing = SwingPLA(delta=1.0)
        swing.feed(5, 9.0)
        fn = swing.finalize()
        assert fn.value_at(5) == 9.0

    def test_exact_line_single_segment(self):
        swing = SwingPLA(delta=0.5)
        for t in range(1, 100):
            swing.feed(t, 3.0 * t)
        assert len(swing.finalize()) == 1

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            SwingPLA(delta=0)
        swing = SwingPLA(delta=1.0)
        swing.feed(1, 0.0)
        swing.feed(2, 0.0)
        with pytest.raises(ValueError):
            swing.feed(2, 0.0)

    def test_segment_count_includes_open_run(self):
        swing = SwingPLA(delta=1.0)
        swing.feed(1, 0.0)
        assert swing.segment_count() == 1


class TestAblation:
    def test_never_beats_optimal(self):
        """O'Rourke is optimal: the anchored filter can only match or
        exceed its segment count."""
        for seed in range(5):
            points = random_walk_points(n=1500, seed=seed)
            optimal = OnlinePLA(delta=2.0)
            anchored = SwingPLA(delta=2.0)
            for t, v in points:
                optimal.feed(t, v)
                anchored.feed(t, v)
            n_optimal = len(optimal.finalize())
            n_anchored = len(anchored.finalize())
            assert n_anchored >= n_optimal

    def test_anchored_pays_on_drifting_walks(self):
        """On at least some realistic counters the gap is material —
        the reason the paper uses the optimal algorithm."""
        gaps = []
        for seed in range(8):
            points = random_walk_points(n=3000, p=0.8, seed=seed)
            optimal = OnlinePLA(delta=3.0)
            anchored = SwingPLA(delta=3.0)
            for t, v in points:
                optimal.feed(t, v)
                anchored.feed(t, v)
            gaps.append(
                len(anchored.finalize()) - len(optimal.finalize())
            )
        assert sum(gaps) > 0
