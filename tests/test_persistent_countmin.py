"""Tests for the PLA-based persistent Count-Min sketch (Section 3)."""

import pytest

from repro.core.persistent_countmin import PersistentCountMin, PWCCountMin
from repro.sketch.countmin import CountMinSketch
from repro.streams.generators import turnstile_stream, zipf_stream
from repro.streams.truth import GroundTruth


@pytest.fixture(scope="module")
def ingested():
    stream = zipf_stream(8000, universe=2**20, exponent=2.0, seed=21)
    truth = GroundTruth(stream)
    sketch = PersistentCountMin(width=1024, depth=5, delta=10, seed=3)
    sketch.ingest(stream)
    return stream, truth, sketch


class TestPointQueries:
    def test_window_point_error_bound(self, ingested):
        stream, truth, sketch = ingested
        delta = sketch.delta
        eps = 2.718281828 / sketch.width
        for s, t in [(0, 8000), (1000, 5000), (4000, 8000), (7900, 8000)]:
            window_l1 = truth.window_l1(s, t)
            bound = eps * window_l1 + 2 * delta + 2  # both endpoints + step slack
            for item, freq in truth.top_k(30, s, t):
                estimate = sketch.point(item, s, t)
                assert abs(estimate - freq) <= bound

    def test_unseen_item_estimates_near_zero(self, ingested):
        _, _, sketch = ingested
        assert abs(sketch.point(2**19 + 12345)) <= 2 * sketch.delta + 2

    def test_t_defaults_to_now(self, ingested):
        _, truth, sketch = ingested
        item, freq = truth.top_k(1)[0]
        assert sketch.point(item) == sketch.point(item, 0, sketch.now)

    def test_empty_window_rejected(self, ingested):
        _, _, sketch = ingested
        with pytest.raises(ValueError):
            sketch.point(1, s=100, t=50)

    def test_matches_ephemeral_at_stream_end(self, ingested):
        """At t = now, the persistent estimate tracks the ephemeral CM
        within the PLA error."""
        stream, truth, sketch = ingested
        ephemeral = CountMinSketch(
            width=sketch.width, depth=sketch.depth, seed=3
        )
        for item in stream.items:
            ephemeral.update(int(item))
        for item, _ in truth.top_k(20):
            persistent = sketch.point(item, 0, sketch.now)
            assert abs(persistent - ephemeral.point_median(item)) <= (
                sketch.delta + 1
            )


class TestAccounting:
    def test_persistence_sublinear_on_skewed_data(self, ingested):
        stream, _, sketch = ingested
        # PLA on a skewed stream: far below the 3*d*m/delta worst case.
        worst = 3 * sketch.depth * len(stream) / sketch.delta
        assert sketch.persistence_words() < worst / 3

    def test_ephemeral_words(self, ingested):
        _, _, sketch = ingested
        assert sketch.ephemeral_words() == 1024 * 5

    def test_finalize_flushes_open_runs(self):
        sketch = PersistentCountMin(width=64, depth=3, delta=5)
        for item in [1, 2, 3, 1, 1]:
            sketch.update(item)
        before = sketch.persistence_words()
        sketch.finalize()
        assert sketch.persistence_words() >= before
        assert sketch.persistence_words() > 0


class TestClock:
    def test_auto_increment(self):
        sketch = PersistentCountMin(width=16, depth=2, delta=5)
        sketch.update(1)
        sketch.update(1)
        assert sketch.now == 2

    def test_explicit_times(self):
        sketch = PersistentCountMin(width=16, depth=2, delta=5)
        sketch.update(1, time=10)
        sketch.update(1, time=20)
        assert sketch.now == 20
        with pytest.raises(ValueError):
            sketch.update(1, time=20)

    def test_time_gaps_hold_values(self):
        sketch = PersistentCountMin(width=64, depth=3, delta=2)
        sketch.update(7, time=10)
        sketch.update(7, time=1000)
        # Between the two arrivals the frequency is 1.
        assert sketch.point(7, 0, 500) == pytest.approx(1, abs=3)


class TestTurnstile:
    def test_deletions_supported(self):
        stream = turnstile_stream(3000, universe=128, seed=5)
        truth = GroundTruth(stream)
        sketch = PersistentCountMin(width=512, depth=5, delta=8, seed=1)
        sketch.ingest(stream)
        eps = 2.718281828 / sketch.width
        s, t = 500, 2500
        bound = eps * truth.window_l1(s, t) + 2 * sketch.delta + 2
        for item in list(truth.items())[:30]:
            freq = truth.frequency(item, s, t)
            assert abs(sketch.point(item, s, t) - freq) <= bound


class TestPWCVariant:
    def test_pwc_error_bound(self):
        stream = zipf_stream(5000, universe=2**18, exponent=2.0, seed=22)
        truth = GroundTruth(stream)
        sketch = PWCCountMin(width=1024, depth=5, delta=10, seed=3)
        sketch.ingest(stream)
        eps = 2.718281828 / sketch.width
        s, t = 1000, 4000
        bound = eps * truth.window_l1(s, t) + 2 * sketch.delta
        for item, freq in truth.top_k(30, s, t):
            assert abs(sketch.point(item, s, t) - freq) <= bound

    def test_pwc_space_at_worst_case_on_hot_counters(self):
        """A single hot item drives its counters to record every delta."""
        sketch = PWCCountMin(width=64, depth=3, delta=10)
        for t in range(1, 1001):
            sketch.update(42, time=t)
        # Each of 3 rows records ~1000/11 values at 2 words each.
        words = sketch.persistence_words()
        assert 3 * 2 * 80 <= words <= 3 * 2 * 101

    def test_name_labels(self):
        assert PersistentCountMin.name == "PLA"
        assert PWCCountMin.name == "PWC_CountMin"
