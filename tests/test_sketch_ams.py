"""Tests for the ephemeral fast AMS / Count sketch."""

import numpy as np
import pytest

from repro.sketch.ams import AMSSketch
from repro.sketch.exact import ExactFrequency
from repro.sketch.l2_tracker import L2Tracker
from repro.streams.generators import zipf_stream


def build_pair(seed_data=1, width=1024, depth=5):
    stream_a = zipf_stream(3000, universe=2**16, exponent=2.0, seed=seed_data)
    stream_b = zipf_stream(3000, universe=2**16, exponent=2.0, seed=seed_data)
    a = AMSSketch(width=width, depth=depth, seed=9)
    b = AMSSketch(width=width, depth=depth, seed=9)
    exact_a, exact_b = ExactFrequency(), ExactFrequency()
    for item in stream_a.items:
        a.update(int(item))
        exact_a.update(int(item))
    for item in stream_b.items:
        b.update(int(item))
        exact_b.update(int(item))
    return a, b, exact_a, exact_b


class TestSelfJoin:
    def test_self_join_accuracy(self):
        a, _, exact_a, _ = build_pair()
        truth = exact_a.self_join_size()
        eps = 2.0 / np.sqrt(1024)
        assert abs(a.self_join_size() - truth) <= eps * truth

    def test_l2_norm(self):
        a, _, exact_a, _ = build_pair()
        truth = exact_a.self_join_size() ** 0.5
        assert a.l2_norm() == pytest.approx(truth, rel=0.1)

    def test_empty_sketch(self):
        sketch = AMSSketch(width=16, depth=3)
        assert sketch.self_join_size() == 0.0
        assert sketch.l2_norm() == 0.0


class TestJoin:
    def test_join_size_accuracy(self):
        a, b, exact_a, exact_b = build_pair()
        truth = exact_a.join_size(exact_b)
        eps = 2.0 / np.sqrt(1024)
        bound = eps * (exact_a.self_join_size() * exact_b.self_join_size()) ** 0.5
        assert abs(a.join_size(b) - truth) <= bound

    def test_join_requires_shared_hashes(self):
        a = AMSSketch(width=64, depth=3, seed=1)
        b = AMSSketch(width=64, depth=3, seed=2)
        with pytest.raises(ValueError):
            a.join_size(b)

    def test_join_requires_same_shape(self):
        a = AMSSketch(width=64, depth=3, seed=1)
        b = AMSSketch(width=32, depth=3, seed=1)
        with pytest.raises(ValueError):
            a.join_size(b)


class TestPoint:
    def test_point_estimates_track_truth(self):
        a, _, exact_a, _ = build_pair()
        eps = 2.0 / np.sqrt(1024)
        bound = eps * exact_a.self_join_size() ** 0.5
        for item, freq in exact_a.top_k(20):
            assert abs(a.point(item) - freq) <= 3 * bound

    def test_turnstile_deletions_cancel(self):
        sketch = AMSSketch(width=256, depth=5, seed=3)
        for _ in range(5):
            sketch.update(7, 1)
        for _ in range(5):
            sketch.update(7, -1)
        assert sketch.point(7) == 0.0
        assert sketch.self_join_size() == 0.0


class TestMerge:
    def test_merge_equals_union(self):
        a = AMSSketch(width=128, depth=4, seed=5)
        b = AMSSketch(width=128, depth=4, seed=5)
        union = AMSSketch(width=128, depth=4, seed=5)
        for item in [1, 2, 3]:
            a.update(item)
            union.update(item)
        for item in [3, 4]:
            b.update(item)
            union.update(item)
        a.merge(b)
        assert (a.counters == union.counters).all()

    def test_merge_mismatch(self):
        a = AMSSketch(width=128, depth=4, seed=5)
        b = AMSSketch(width=128, depth=4, seed=6)
        with pytest.raises(ValueError):
            a.merge(b)


class TestFromError:
    def test_shape(self):
        sketch = AMSSketch.from_error(eps=0.1, delta=0.05)
        assert sketch.width >= 400
        assert sketch.depth >= 2

    def test_invalid(self):
        with pytest.raises(ValueError):
            AMSSketch.from_error(eps=0, delta=0.1)


class TestL2Tracker:
    def test_constant_factor_tracking(self):
        stream = zipf_stream(5000, universe=2**16, exponent=2.0, seed=4)
        tracker = L2Tracker(expected_length=5000, seed=2)
        exact = ExactFrequency()
        checkpoints = []
        for idx, item in enumerate(stream.items, start=1):
            tracker.update(int(item))
            exact.update(int(item))
            if idx % 500 == 0:
                truth = exact.self_join_size() ** 0.5
                checkpoints.append((tracker.estimate(), truth))
        for estimate, truth in checkpoints:
            assert truth / 2 <= estimate <= truth * 2

    def test_empty(self):
        assert L2Tracker().estimate() == 0.0

    def test_words_positive(self):
        assert L2Tracker(expected_length=1000).words() > 0
