"""Degraded-mode supervision: the HealthMonitor state machine and the
IngestRuntime integration around it.

The contract under test: a durability failure flips the runtime to
``DEGRADED_READONLY`` — writes are refused with a typed
:class:`DegradedError` naming the cause, queries keep serving — and a
recoverable cause heals through hysteresis probing (``heal_after``
consecutive successful probes), while sticky causes (fsck-reported data
loss) heal only through explicit operator acknowledgment.  ``FAILED``
(apply divergence after durability) refuses reads too and cannot be
acknowledged back.
"""

from __future__ import annotations

import errno

import pytest

from repro.runtime import (
    DegradedError,
    FaultPlan,
    HealthMonitor,
    HealthState,
    IngestPolicy,
    IngestRuntime,
    SnapshotRetryError,
)
from tests.test_runtime_batch import make_raws, make_store

# --------------------------------------------------------------------- #
# HealthMonitor state machine (pure, probe-stubbed)
# --------------------------------------------------------------------- #


class ScriptedProbe:
    """Probe stub returning a scripted sequence (last value repeats)."""

    def __init__(self, *results):
        self.results = list(results)
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if len(self.results) > 1:
            return self.results.pop(0)
        return self.results[0]


def monitor(probe=None, **kwargs):
    kwargs.setdefault("probe_interval", 1)
    kwargs.setdefault("heal_after", 2)
    return HealthMonitor(".", probe=probe, **kwargs)


def test_healthy_monitor_gates_nothing():
    mon = monitor()
    mon.check_writable()
    mon.check_readable()
    assert mon.state is HealthState.HEALTHY
    assert mon.snapshot()["state"] == "healthy"


def test_degrade_rejects_writes_with_typed_error():
    mon = monitor(probe=ScriptedProbe(False))
    mon.degrade("wal-io-error", "disk went away")
    with pytest.raises(DegradedError) as excinfo:
        mon.check_writable()
    assert excinfo.value.state is HealthState.DEGRADED_READONLY
    assert excinfo.value.cause == "wal-io-error"
    assert "disk went away" in excinfo.value.detail
    mon.check_readable()  # queries keep serving
    assert mon.rejected_writes == 1


def test_hysteresis_heals_after_consecutive_probe_successes():
    probe = ScriptedProbe(False, True, True)
    mon = monitor(probe=probe, probe_interval=1, heal_after=2)
    mon.degrade("disk-full", "ENOSPC")
    with pytest.raises(DegradedError):
        mon.check_writable()  # probe -> False, streak resets
    with pytest.raises(DegradedError):
        mon.check_writable()  # probe -> True, streak 1 of 2
    mon.check_writable()  # probe -> True, streak 2: healed, write proceeds
    assert mon.state is HealthState.HEALTHY
    assert mon.heals == 1 and probe.calls == 3


def test_single_probe_success_is_not_enough():
    """A flapping disk must not flap the state machine."""
    probe = ScriptedProbe(True, False, True, False)
    mon = monitor(probe=probe, probe_interval=1, heal_after=2)
    mon.degrade("disk-full", "ENOSPC")
    for _ in range(4):
        with pytest.raises(DegradedError):
            mon.check_writable()
    assert mon.state is HealthState.DEGRADED_READONLY
    assert mon.heals == 0


def test_probe_interval_limits_probe_frequency():
    probe = ScriptedProbe(False)
    mon = monitor(probe=probe, probe_interval=4, heal_after=1)
    mon.degrade("wal-io-error", "flaky")
    for _ in range(8):
        with pytest.raises(DegradedError):
            mon.check_writable()
    # First rejection after a degradation probes immediately; then every
    # fourth: rejections 1 and 5 probed.
    assert probe.calls == 2


def test_sticky_cause_never_probes_and_needs_acknowledge():
    probe = ScriptedProbe(True)
    mon = monitor(probe=probe)
    mon.degrade("wal-quarantined", "fsck lost 9 records", recoverable=False)
    for _ in range(5):
        with pytest.raises(DegradedError):
            mon.check_writable()
    assert probe.calls == 0, "sticky degradations must not self-heal"
    assert mon.state is HealthState.DEGRADED_READONLY
    mon.acknowledge()
    assert mon.state is HealthState.HEALTHY
    mon.check_writable()


def test_sticky_cause_wins_over_later_recoverable_one():
    mon = monitor(probe=ScriptedProbe(True))
    mon.degrade("wal-quarantined", "data loss", recoverable=False)
    mon.degrade("disk-full", "ENOSPC")  # must not displace the sticky cause
    assert mon.cause == "wal-quarantined"
    assert not mon.recoverable


def test_failed_refuses_reads_and_acknowledge():
    mon = monitor()
    mon.fail("apply-divergence", "exception after WAL durability")
    with pytest.raises(DegradedError):
        mon.check_writable()
    with pytest.raises(DegradedError):
        mon.check_readable()
    with pytest.raises(DegradedError, match="cannot be acknowledged"):
        mon.acknowledge()
    assert mon.state is HealthState.FAILED


def test_degrade_is_noop_once_failed():
    mon = monitor()
    mon.fail("apply-divergence", "boom")
    mon.degrade("disk-full", "ENOSPC")
    assert mon.state is HealthState.FAILED
    assert mon.cause == "apply-divergence"


def test_snapshot_counters_and_checkpoint_age():
    clock = iter([10.0, 25.0]).__next__
    mon = HealthMonitor(".", probe=ScriptedProbe(False), clock=clock)
    assert mon.checkpoint_age() is None
    mon.note_checkpoint()  # at t=10
    mon.note_quarantine(2, 1)
    view = mon.snapshot()  # age read at t=25
    assert view["checkpoint_age_s"] == pytest.approx(15.0)
    assert view["quarantined_segments"] == 2
    assert view["quarantined_checkpoints"] == 1


def test_constructor_validation():
    with pytest.raises(ValueError, match="probe_interval"):
        HealthMonitor(".", probe_interval=0)
    with pytest.raises(ValueError, match="heal_after"):
        HealthMonitor(".", heal_after=0)


def test_real_directory_probe_round_trips(tmp_path):
    mon = HealthMonitor(tmp_path)
    assert mon.probe() is True
    assert not (tmp_path / ".health-probe").exists()
    assert HealthMonitor(tmp_path / "does-not-exist").probe() is False


# --------------------------------------------------------------------- #
# IngestRuntime integration: degradation causes and end-to-end healing
# --------------------------------------------------------------------- #


def no_sleep(_t):
    return None


def test_snapshot_retries_exhausted_degrades_but_keeps_serving(tmp_path):
    plan = FaultPlan(io_error_at_checkpoint=1, io_error_count=99)
    runtime = IngestRuntime.create(
        tmp_path / "rt",
        make_store(),
        checkpoint_every=10,
        policy=IngestPolicy(max_retries=2),
        faults=plan,
        sleep=no_sleep,
        probe=ScriptedProbe(False),
    )
    raws = make_raws(n=30, dirty=False)
    for raw in raws[:9]:
        runtime.ingest(raw)
    # The 10th record triggers the checkpoint; its snapshot I/O fails
    # past the retry budget.  The record itself is already durable, so
    # ingest absorbs the failure — the *next* write surfaces the state.
    runtime.ingest(raws[9])
    health = runtime.health()
    assert health["state"] == "degraded-readonly"
    assert health["cause"] == "snapshot-retries-exhausted"
    with pytest.raises(DegradedError, match="snapshot-retries-exhausted"):
        runtime.ingest(raws[10])
    # Live queries and the frozen view still serve.
    now = runtime._clocks["urls"]
    assert runtime.store.point("urls", 1, 0, now) is not None
    view = runtime.frozen_view()
    assert view.streams() == ["ads", "urls"]
    runtime.close()


def test_enospc_classified_as_disk_full(tmp_path):
    plan = FaultPlan(
        io_error_at_checkpoint=1, io_error_count=99, io_error_enospc=True
    )
    runtime = IngestRuntime.create(
        tmp_path / "rt",
        make_store(),
        checkpoint_every=1000,  # no cadence: the explicit call is attempt 1
        policy=IngestPolicy(max_retries=1),
        faults=plan,
        sleep=no_sleep,
        probe=ScriptedProbe(False),
    )
    raws = make_raws(n=10, dirty=False)
    for raw in raws[:5]:
        runtime.ingest(raw)
    with pytest.raises(SnapshotRetryError) as excinfo:
        runtime.checkpoint()  # explicit checkpoint re-raises
    assert getattr(excinfo.value.__cause__, "errno", None) == errno.ENOSPC
    assert runtime.health()["cause"] == "disk-full"
    runtime.close()


def test_degraded_runtime_heals_through_probe_and_resumes(tmp_path):
    probe = ScriptedProbe(True)
    plan = FaultPlan(io_error_at_checkpoint=1, io_error_count=3)
    runtime = IngestRuntime.create(
        tmp_path / "rt",
        make_store(),
        checkpoint_every=10,
        policy=IngestPolicy(max_retries=1),
        faults=plan,
        sleep=no_sleep,
        probe=probe,
    )
    runtime.monitor.probe_interval = 1
    runtime.monitor.heal_after = 2
    raws = make_raws(n=40, dirty=False)
    for raw in raws[:10]:
        runtime.ingest(raw)
    assert runtime.health()["state"] == "degraded-readonly"
    rejected = 0
    applied = 0
    for raw in raws[10:]:
        try:
            applied += runtime.ingest(raw)
        except DegradedError:
            rejected += 1
    assert rejected > 0, "some writes must bounce while degraded"
    assert applied > 0, "healing must let later writes through"
    assert runtime.health()["state"] == "healthy"
    assert runtime.health()["heals"] == 1
    # Post-heal writes are durable: recovery replays to the same seq.
    applied_seq = runtime.applied_seq
    runtime.close()
    recovered = IngestRuntime.recover(tmp_path / "rt", checkpoint_every=10)
    assert recovered.applied_seq == applied_seq
    recovered.close()


def test_failed_runtime_refuses_frozen_view(tmp_path):
    runtime = IngestRuntime.create(tmp_path / "rt", make_store())
    runtime.monitor.fail("apply-divergence", "post-durability exception")
    with pytest.raises(DegradedError):
        runtime.frozen_view()
    with pytest.raises(DegradedError):
        runtime.ingest({"stream": "urls", "item": 1, "time": 1})
    runtime.close()


def test_describe_and_health_surface_monitor_state(tmp_path):
    runtime = IngestRuntime.create(tmp_path / "rt", make_store())
    for raw in make_raws(n=7, dirty=False):
        runtime.ingest(raw)
    health = runtime.health()
    assert health["state"] == "healthy"
    assert health["applied_seq"] == 7
    assert health["wal_lag"] == 7  # no checkpoint yet at cadence 1000
    assert runtime.describe()["health"]["state"] == "healthy"
    report = runtime.fsck()  # online scrub: scan-only on a live runtime
    assert report.clean
    runtime.close()
