"""Unit tests for the whole-program analysis engine.

Covers the three layers under the interprocedural rules: the project
symbol table (:mod:`repro.analysis.symbols`), the call-graph builder
(:mod:`repro.analysis.callgraph`) and the intraprocedural dataflow
summaries (:mod:`repro.analysis.dataflow`) — in particular the call
resolution strategies the rules rely on: module functions, methods
(including inherited, overridden and decorated ones), typed receivers
and fork-shipped callables.
"""

from __future__ import annotations

import ast
import textwrap

from repro.analysis.callgraph import Project
from repro.analysis.dataflow import free_names, summarize
from repro.analysis.symbols import (
    annotation_class_name,
    build_symbol_table,
    module_name_for_path,
)


def project_from(files):
    """Build a :class:`Project` from ``{path: source}``."""
    modules = [
        (path, textwrap.dedent(source), ast.parse(textwrap.dedent(source)))
        for path, source in files.items()
    ]
    return Project(build_symbol_table(modules))


def fn_node(project, qualname):
    return project.symbols.functions[qualname].node


# --------------------------------------------------------------------- #
# Symbol table
# --------------------------------------------------------------------- #


def test_module_name_for_path():
    assert module_name_for_path("src/repro/store/store.py") == "repro.store.store"
    assert module_name_for_path("src/repro/io/__init__.py") == "repro.io"
    assert module_name_for_path("tests/test_x.py") == "tests.test_x"


def test_symbol_table_indexes_functions_classes_and_nested_defs():
    project = project_from(
        {
            "src/repro/core/m.py": """
                def outer():
                    def inner():
                        return 1
                    return inner

                class Sketch:
                    def update(self, item):
                        return item

                handler = lambda x: x
            """
        }
    )
    functions = project.symbols.functions
    assert "repro.core.m.outer" in functions
    assert "repro.core.m.outer.inner" in functions
    assert "repro.core.m.Sketch.update" in functions
    assert functions["repro.core.m.Sketch.update"].is_method
    assert functions["repro.core.m.outer.inner"].parent == "repro.core.m.outer"
    assert "repro.core.m.Sketch" in project.symbols.classes


def test_symbol_table_collects_imports_and_mutable_globals():
    project = project_from(
        {
            "src/repro/core/m.py": """
                import numpy as np
                from repro.io.atomic import atomic_write_text as awt
                from .other import helper

                REGISTRY = {}
                LIMIT = 10
            """
        }
    )
    module = project.symbols.modules["repro.core.m"]
    assert module.imports["np"] == "numpy"
    assert module.imports["awt"] == "repro.io.atomic.atomic_write_text"
    assert module.imports["helper"] == "repro.core.other.helper"
    assert module.mutable_globals() == {"REGISTRY"}


def test_attr_types_from_annotations_and_constructor_bindings():
    project = project_from(
        {
            "src/repro/core/m.py": """
                class Engine:
                    pass

                class Holder:
                    slot: Engine

                    def __init__(self, engine: Engine, other=None):
                        self.built = Engine()
                        self.stored = engine
                        self.unknown = other
            """
        }
    )
    cls = project.symbols.classes["repro.core.m.Holder"]
    assert cls.attr_types["slot"] == "Engine"
    assert cls.attr_types["built"] == "Engine"
    assert cls.attr_types["stored"] == "Engine"
    assert "unknown" not in cls.attr_types


def test_annotation_class_name_unwraps_optional_and_unions():
    def parse(text):
        return ast.parse(text, mode="eval").body

    assert annotation_class_name(parse("Engine")) == "Engine"
    assert annotation_class_name(parse("Engine | None")) == "Engine"
    assert annotation_class_name(parse("Optional[Engine]")) == "Engine"
    assert annotation_class_name(parse("'Engine'")) == "Engine"
    assert annotation_class_name(parse("a.b.Engine")) == "Engine"
    assert annotation_class_name(parse("Engine | Other")) is None
    assert annotation_class_name(parse("list[int]")) is None


# --------------------------------------------------------------------- #
# Call graph resolution
# --------------------------------------------------------------------- #


def test_resolves_module_function_calls():
    project = project_from(
        {
            "src/repro/core/m.py": """
                def helper():
                    return 1

                def entry():
                    return helper()
            """
        }
    )
    assert project.graph.callees("repro.core.m.entry") == {
        "repro.core.m.helper"
    }


def test_resolves_self_method_and_subclass_overrides():
    project = project_from(
        {
            "src/repro/core/m.py": """
                class Base:
                    def run(self):
                        return self.step()

                    def step(self):
                        return 0

                class Child(Base):
                    def step(self):
                        return 1
            """
        }
    )
    callees = project.graph.callees("repro.core.m.Base.run")
    # Static target plus the virtual edge to the override.
    assert callees == {"repro.core.m.Base.step", "repro.core.m.Child.step"}


def test_resolves_inherited_method_through_mro():
    project = project_from(
        {
            "src/repro/core/m.py": """
                class Base:
                    def save(self):
                        return 1

                class Child(Base):
                    def run(self):
                        return self.save()
            """
        }
    )
    assert project.graph.callees("repro.core.m.Child.run") == {
        "repro.core.m.Base.save"
    }


def test_resolves_decorated_callees():
    project = project_from(
        {
            "src/repro/core/m.py": """
                class Tracker:
                    @contracts.monotone_timestamps(param="t")
                    def feed(self, t):
                        return t

                    def push(self, t):
                        return self.feed(t)

                @functools.cache
                def helper():
                    return 2

                def entry():
                    return helper()
            """
        }
    )
    assert project.graph.callees("repro.core.m.Tracker.push") == {
        "repro.core.m.Tracker.feed"
    }
    assert project.graph.callees("repro.core.m.entry") == {
        "repro.core.m.helper"
    }
    feed = project.symbols.functions["repro.core.m.Tracker.feed"]
    assert feed.decorators == ("monotone_timestamps",)


def test_resolves_cross_module_imported_function():
    project = project_from(
        {
            "src/repro/a.py": """
                from repro.b import work

                def entry():
                    return work()
            """,
            "src/repro/b.py": """
                def work():
                    return 1
            """,
        }
    )
    assert project.graph.callees("repro.a.entry") == {"repro.b.work"}


def test_resolves_typed_attribute_receiver():
    project = project_from(
        {
            "src/repro/core/m.py": """
                class Inner:
                    def feed(self, t):
                        return t

                class Facade:
                    def __init__(self):
                        self._inner = Inner()

                    def push(self, t):
                        return self._inner.feed(t)
            """
        }
    )
    assert project.graph.callees("repro.core.m.Facade.push") == {
        "repro.core.m.Inner.feed"
    }


def test_resolves_receiver_typed_by_return_annotation():
    project = project_from(
        {
            "src/repro/core/m.py": """
                class Pool:
                    def feed(self, batch):
                        return batch

                class Sketch:
                    def _ensure_pool(self) -> Pool:
                        return Pool()

                    def ingest(self, batch):
                        pool = self._ensure_pool()
                        return pool.feed(batch)
            """
        }
    )
    callees = project.graph.callees("repro.core.m.Sketch.ingest")
    assert "repro.core.m.Pool.feed" in callees


def test_class_call_resolves_to_init():
    project = project_from(
        {
            "src/repro/core/m.py": """
                class Snapshot:
                    def __init__(self, data):
                        self.data = data

                def freeze(data):
                    return Snapshot(data)
            """
        }
    )
    assert project.graph.callees("repro.core.m.freeze") == {
        "repro.core.m.Snapshot.__init__"
    }


def test_unresolvable_call_has_no_targets():
    project = project_from(
        {
            "src/repro/core/m.py": """
                def entry(thing):
                    return thing.mystery_method()
            """
        }
    )
    assert project.graph.callees("repro.core.m.entry") == set()


def test_resolve_callable_for_fork_dispatch_arguments():
    project = project_from(
        {
            "src/repro/core/m.py": """
                def _worker(task):
                    return task

                class Ingest:
                    def _work(self, task):
                        return task

                    def launch(self, tasks):
                        parallel_map(self._work, tasks, 4)
                        parallel_map(_worker, tasks, 4)
                        parallel_map(lambda t: t + 1, tasks, 4)
            """
        }
    )
    fn = project.symbols.functions["repro.core.m.Ingest.launch"]
    shipped = []
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Call):
            shipped.extend(
                target.qualname
                for target in project.resolve_callable(fn, node.args[0])
            )
    assert "repro.core.m.Ingest._work" in shipped
    assert "repro.core.m._worker" in shipped
    assert any("<lambda" in name for name in shipped)


def test_reachable_bfs_with_stop_nodes_and_paths():
    project = project_from(
        {
            "src/repro/core/m.py": """
                def a():
                    return b()

                def b():
                    return c()

                def c():
                    return d()

                def d():
                    return 1
            """
        }
    )
    full = project.reachable(["repro.core.m.a"])
    assert "repro.core.m.d" in full
    assert Project.path_to(full, "repro.core.m.d") == [
        "repro.core.m.a",
        "repro.core.m.b",
        "repro.core.m.c",
        "repro.core.m.d",
    ]
    # b is reached but not expanded: c and d stay invisible.
    stopped = project.reachable(
        ["repro.core.m.a"], stop=frozenset({"repro.core.m.b"})
    )
    assert "repro.core.m.b" in stopped
    assert "repro.core.m.c" not in stopped


# --------------------------------------------------------------------- #
# Dataflow summaries
# --------------------------------------------------------------------- #


def scope(source, name):
    tree = ast.parse(textwrap.dedent(source))
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    raise AssertionError(f"no function {name}")


def test_summary_free_reads_writes_and_mutations():
    node = scope(
        """
        def f(x):
            local = x + GLOBAL_VALUE
            CACHE[x] = local
            BUCKET.append(local)
            global TOTAL
            TOTAL = local
            return local
        """,
        "f",
    )
    summary = summarize(node)
    assert "GLOBAL_VALUE" in summary.free_reads
    assert {"CACHE", "BUCKET"} <= summary.free_mutations
    assert "TOTAL" in summary.free_writes
    assert "local" in summary.bound
    assert "x" in summary.bound


def test_summary_self_attribute_tracking():
    node = scope(
        """
        def feed(self, t):
            self._clock = t
            self._runs.append(t)
            return self._delta
        """,
        "feed",
    )
    summary = summarize(node)
    assert {"_clock", "_runs"} <= summary.self_mutations
    assert "_delta" in summary.self_reads


def test_summary_rng_detection():
    assert summarize(scope("def f(rng):\n    return rng.random()\n", "f")).touches_rng
    assert summarize(
        scope("def f(state):\n    return state.rng.random()\n", "f")
    ).touches_rng
    assert not summarize(scope("def f(x):\n    return x + 1\n", "f")).touches_rng


def test_summary_excludes_nested_scopes_but_links_captures():
    node = scope(
        """
        def outer(items):
            acc = []

            def inner(x):
                acc.append(x)
                return OUTSIDE

            return [inner(i) for i in items]
        """,
        "outer",
    )
    summary = summarize(node)
    # inner's body is not part of outer's own mutation set...
    assert "acc" not in summary.free_mutations
    # ...but the closure link is recorded, and free_names sees through.
    assert "acc" in summary.captured
    assert "inner" in summary.nested
    assert "OUTSIDE" in free_names(node)
    assert "acc" not in free_names(node)  # bound by the enclosing scope


def test_summary_local_constructor_types():
    node = scope(
        """
        def f():
            pool = WorkerPool(2)
            n = helper()
            return pool, n
        """,
        "f",
    )
    summary = summarize(node)
    assert summary.local_types == {"pool": "WorkerPool"}
