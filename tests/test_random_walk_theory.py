"""Empirical validation of the appendix's random-walk lemma.

Lemma A.1: for a counter whose deviation from its trend line performs a
lazy random walk with per-step variance ``alpha``, the escape time from
a ``+-Delta`` tube satisfies ``E[tau] = Delta^2 / alpha`` with variance
at most ``5 Delta^4 / (6 alpha^2)``.  This is the engine behind Theorem
3.3's ``m / Delta^2`` space bound; we validate the scaling and the
concentration by direct simulation of the walk the proof analyses.
"""

import numpy as np
import pytest


def escape_time(delta: float, p1: float, p2: float, rng, max_steps=10**6) -> int:
    """Steps until the deviation walk leaves (-delta, +delta)."""
    drift = p1 - p2
    position = 0.0
    draws = rng.random(max_steps)
    for step in range(max_steps):
        u = draws[step]
        if u < p1:
            position += 1.0 - drift
        elif u < p1 + p2:
            position += -1.0 - drift
        else:
            position += -drift
        if abs(position) >= delta:
            return step + 1
    return max_steps


class TestLemmaA1:
    @pytest.mark.parametrize("p1,p2", [(0.5, 0.0), (0.3, 0.3), (0.2, 0.05)])
    def test_mean_escape_time_quadratic_in_delta(self, p1, p2):
        """E[tau] = Delta^2 / alpha: quadrupling when Delta doubles."""
        rng = np.random.default_rng(hash((p1, p2)) % 2**32)
        runs = 60

        def mean_tau(delta):
            return np.mean(
                [escape_time(delta, p1, p2, rng) for _ in range(runs)]
            )

        tau_small = mean_tau(8.0)
        tau_large = mean_tau(16.0)
        ratio = tau_large / tau_small
        # Expect ~4; accept 2.5..6 at this sample size.
        assert 2.5 <= ratio <= 6.0

    def test_mean_matches_alpha_formula(self):
        """E[tau] ~ Delta^2 / alpha with alpha = E[X^2] of the step."""
        p1, p2 = 0.4, 0.2
        drift = p1 - p2
        alpha = (
            p1 * (1 - drift) ** 2
            + p2 * (-1 - drift) ** 2
            + (1 - p1 - p2) * drift**2
        )
        delta = 12.0
        rng = np.random.default_rng(7)
        taus = [escape_time(delta, p1, p2, rng) for _ in range(80)]
        expected = delta**2 / alpha
        assert np.mean(taus) == pytest.approx(expected, rel=0.35)

    def test_concentration(self):
        """Var[tau] <= 5 Delta^4 / (6 alpha^2) (allowing sampling noise):
        the walk does not escape much earlier than the mean, which is
        what makes Theorem 3.3's expectation meaningful."""
        p1 = p2 = 0.3
        alpha = p1 + p2  # drift 0: alpha = E[X^2] = p1 + p2
        delta = 10.0
        rng = np.random.default_rng(11)
        taus = np.array(
            [escape_time(delta, p1, p2, rng) for _ in range(150)],
            dtype=float,
        )
        bound = 5 * delta**4 / (6 * alpha**2)
        assert taus.var() <= 2.0 * bound
