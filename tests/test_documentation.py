"""Quality gate: every public item in the library is documented."""

import importlib
import inspect
import pkgutil

import repro


def iter_modules():
    yield repro
    for module_info in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    ):
        yield importlib.import_module(module_info.name)


def public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports are documented at their origin
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


def test_all_modules_have_docstrings():
    undocumented = [
        module.__name__ for module in iter_modules() if not module.__doc__
    ]
    assert undocumented == []


def test_all_public_classes_and_functions_documented():
    undocumented = []
    for module in iter_modules():
        for name, obj in public_members(module):
            if not inspect.getdoc(obj):
                undocumented.append(f"{module.__name__}.{name}")
    assert undocumented == []


def test_all_public_methods_documented():
    undocumented = []
    for module in iter_modules():
        for class_name, cls in public_members(module):
            if not inspect.isclass(cls):
                continue
            for name, member in vars(cls).items():
                if name.startswith("_"):
                    continue
                if inspect.isfunction(member) and not inspect.getdoc(member):
                    undocumented.append(
                        f"{module.__name__}.{class_name}.{name}"
                    )
    assert undocumented == []
