"""Tests for sketch serialization."""

import pytest

from repro.core.heavy_hitters import PersistentHeavyHitters
from repro.core.persistent_ams import PersistentAMS
from repro.core.persistent_countmin import PersistentCountMin, PWCCountMin
from repro.core.pwc_ams import PWCAMS
from repro.io import from_dict, load, save, to_dict
from repro.io.serialize import SerializationError
from repro.streams.generators import zipf_stream
from repro.streams.model import Stream
from repro.streams.truth import GroundTruth


@pytest.fixture(scope="module")
def stream():
    return zipf_stream(4000, universe=2**16, exponent=1.8, seed=55)


@pytest.fixture(scope="module")
def truth(stream):
    return GroundTruth(stream)


def ingest(sketch, stream):
    sketch.ingest(stream)
    return sketch


class TestRoundTrips:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: PersistentCountMin(width=256, depth=4, delta=10, seed=2),
            lambda: PWCCountMin(width=256, depth=4, delta=10, seed=2),
            lambda: PWCAMS(width=256, depth=4, delta=10, seed=2),
        ],
        ids=["PLA", "PWC_CM", "PWC_AMS"],
    )
    def test_point_answers_survive(self, factory, stream, truth, tmp_path):
        original = ingest(factory(), stream)
        path = save(original, tmp_path / "sketch.json")
        restored = load(path)
        for item, _ in truth.top_k(20):
            for s, t in [(0, 4000), (1000, 3000)]:
                assert restored.point(item, s, t) == pytest.approx(
                    original.point(item, s, t), abs=1e-9
                )
        assert restored.persistence_words() >= 0
        assert restored.now == original.now

    def test_ams_self_join_survives(self, stream, tmp_path):
        original = ingest(
            PersistentAMS(width=256, depth=4, delta=10, seed=2), stream
        )
        expected = original.self_join_size(500, 3500)
        restored = load(save(original, tmp_path / "ams.json.gz"))
        assert restored.self_join_size(500, 3500) == pytest.approx(expected)

    def test_heavy_hitters_survive(self, tmp_path):
        import numpy as np

        rng = np.random.default_rng(66)
        items = rng.integers(0, 128, size=3000)
        items[::4] = 5
        hh_stream = Stream(items=items, universe=128)
        original = PersistentHeavyHitters(
            universe=128, width=128, depth=3, delta=8
        )
        original.ingest(hh_stream)
        expected = original.heavy_hitters(0.1)
        restored = load(save(original, tmp_path / "hh.json"))
        assert restored.heavy_hitters(0.1).keys() == expected.keys()
        assert restored.window_mass(0, 3000) == pytest.approx(
            original.window_mass(0, 3000)
        )

    def test_gzip_smaller_than_plain(self, stream, tmp_path):
        sketch = ingest(
            PersistentAMS(width=256, depth=4, delta=5, seed=2), stream
        )
        plain = save(sketch, tmp_path / "a.json")
        packed = save(sketch, tmp_path / "a.json.gz")
        assert packed.stat().st_size < plain.stat().st_size


class TestContinuedIngest:
    def test_updates_after_load(self, tmp_path):
        original = PersistentCountMin(width=128, depth=3, delta=4, seed=1)
        for t in range(1, 101):
            original.update(7, time=t)
        restored = load(save(original, tmp_path / "cm.json"))
        for t in range(101, 201):
            restored.update(7, time=t)
        assert restored.point(7, 0, 200) == pytest.approx(200, abs=10)
        # History before the save is still intact.
        assert restored.point(7, 0, 100) == pytest.approx(100, abs=10)

    def test_ams_rng_continuity(self, tmp_path):
        """The restored sketch continues the exact random sequence: two
        copies diverge from a fresh sketch but not from each other."""
        base = PersistentAMS(width=64, depth=3, delta=3, seed=4)
        for t in range(1, 201):
            base.update(t % 17, time=t)
        doc = to_dict(base)
        a, b = from_dict(doc), from_dict(doc)
        for t in range(201, 401):
            a.update(t % 17, time=t)
            b.update(t % 17, time=t)
        assert a.persistence_words() == b.persistence_words()
        assert a.self_join_size(0, 400) == b.self_join_size(0, 400)


class TestErrors:
    def test_unknown_type(self):
        with pytest.raises(SerializationError):
            to_dict(object())

    def test_bad_format(self):
        with pytest.raises(SerializationError):
            from_dict({"format": "nope"})

    def test_bad_version(self):
        with pytest.raises(SerializationError):
            from_dict({"format": "repro-sketch", "version": 99})

    def test_unknown_sketch_type(self):
        with pytest.raises(SerializationError):
            from_dict(
                {"format": "repro-sketch", "version": 1, "type": "Quantile"}
            )


class TestCorruptFiles:
    """load() wraps low-level decode failures in SerializationError,
    always naming the offending path."""

    def _saved(self, tmp_path):
        sketch = PersistentCountMin(width=64, depth=3, delta=4, seed=1)
        for t in range(1, 50):
            sketch.update(t % 7, time=t)
        return save(sketch, tmp_path / "sketch.json")

    def test_truncated_gzip(self, tmp_path):
        path = self._saved(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(SerializationError) as excinfo:
            load(path)
        assert str(path) in str(excinfo.value)

    def test_not_gzip_at_all(self, tmp_path):
        path = tmp_path / "sketch.json.gz"
        path.write_bytes(b"this was never a gzip archive")
        with pytest.raises(SerializationError) as excinfo:
            load(path)
        assert str(path) in str(excinfo.value)

    def test_bad_json_inside_archive(self, tmp_path):
        import gzip as _gzip

        path = tmp_path / "sketch.json.gz"
        with _gzip.open(path, "wb") as handle:
            handle.write(b'{"format": "repro-sketch", truncated')
        with pytest.raises(SerializationError) as excinfo:
            load(path)
        assert str(path) in str(excinfo.value)

    def test_bad_utf8_inside_archive(self, tmp_path):
        import gzip as _gzip

        path = tmp_path / "sketch.json.gz"
        with _gzip.open(path, "wb") as handle:
            handle.write(b"\xff\xfe\x00garbage")
        with pytest.raises(SerializationError) as excinfo:
            load(path)
        assert str(path) in str(excinfo.value)

    def test_non_object_document(self, tmp_path):
        import gzip as _gzip

        path = tmp_path / "sketch.json.gz"
        with _gzip.open(path, "wb") as handle:
            handle.write(b"[1, 2, 3]")
        with pytest.raises(SerializationError):
            load(path)

    def test_save_is_atomic_on_crash(self, tmp_path, monkeypatch):
        """A crash mid-save must leave the previous archive intact."""
        import os as _os

        path = self._saved(tmp_path)
        good = path.read_bytes()

        def exploding_replace(src, dst):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(_os, "replace", exploding_replace)
        sketch = PersistentCountMin(width=64, depth=3, delta=4, seed=9)
        sketch.update(1, time=1)
        with pytest.raises(OSError):
            save(sketch, tmp_path / "sketch.json")
        monkeypatch.undo()
        assert path.read_bytes() == good
        assert load(path) is not None
