"""Tests for the sampled counter histories (Section 4.1)."""

from random import Random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.persistence.history_list import SampledHistoryList


class TestValidation:
    @pytest.mark.parametrize("p", [0.0, -0.5, 1.5])
    def test_invalid_probability(self, p):
        with pytest.raises(ValueError):
            SampledHistoryList(probability=p, rng=Random(0))


class TestSampling:
    def test_probability_one_records_everything(self):
        history = SampledHistoryList(probability=1.0, rng=Random(1))
        for t in range(1, 101):
            history.offer(t, t)
        assert len(history) == 100

    def test_sampling_rate_statistics(self):
        history = SampledHistoryList(probability=0.1, rng=Random(2))
        n = 20_000
        for t in range(1, n + 1):
            history.offer(t, t)
        # Binomial(20000, 0.1): mean 2000, sd ~ 42; allow 6 sigma.
        assert abs(len(history) - 2000) < 260

    def test_force_sample(self):
        history = SampledHistoryList(probability=0.001, rng=Random(3))
        history.force_sample(5, 42)
        assert len(history) == 1
        assert history.last_sampled_at(10) == (5, 42)


class TestEstimates:
    def test_no_predecessor_returns_initial(self):
        history = SampledHistoryList(
            probability=0.5, rng=Random(4), initial_value=7
        )
        assert history.estimate_at(100) == 7.0

    def test_compensation_applied(self):
        delta = 10
        history = SampledHistoryList(probability=1.0 / delta, rng=Random(5))
        history.force_sample(3, 20)
        assert history.estimate_at(3) == 20 + delta - 1
        assert history.estimate_at(2) == 0.0

    def test_predecessor_selection(self):
        history = SampledHistoryList(probability=1.0, rng=Random(6))
        history.force_sample(1, 10)
        history.force_sample(5, 50)
        assert history.last_sampled_at(4) == (1, 10)
        assert history.last_sampled_at(5) == (5, 50)
        assert history.last_sampled_at(0) is None

    def test_unbiasedness_of_compensated_estimate(self):
        """Lemma A.5: E[estimate - truth] = 0 over the sampling randomness.

        Simulates many independent history lists over the same monotone
        counter and checks the empirical mean of the estimate at a fixed
        time against the true counter value.
        """
        delta = 8
        truth_at_t = 200
        total = 0.0
        runs = 400
        for seed in range(runs):
            history = SampledHistoryList(
                probability=1.0 / delta, rng=Random(seed)
            )
            for value in range(1, truth_at_t + 1):
                history.offer(value, value)  # counter = time here
            total += history.estimate_at(truth_at_t)
        mean = total / runs
        # sd per run <= delta (Lemma A.5: E[X^2] <= 1/p^2); mean sd ~ delta/20.
        assert abs(mean - truth_at_t) < 5 * delta / runs**0.5 + 1.0

    @settings(max_examples=30)
    @given(st.integers(min_value=1, max_value=50))
    def test_estimate_monotone_in_time(self, n):
        """With all values sampled, estimates are monotone for a monotone
        counter."""
        history = SampledHistoryList(probability=1.0, rng=Random(9))
        for t in range(1, n + 1):
            history.offer(t, t)
        estimates = [history.estimate_at(t) for t in range(1, n + 1)]
        assert estimates == sorted(estimates)


class TestAccounting:
    def test_words(self):
        history = SampledHistoryList(probability=1.0, rng=Random(10))
        history.offer(1, 1)
        history.offer(2, 2)
        assert history.words() == 4
