"""Shared benchmark configuration.

Each benchmark regenerates one table/figure of the paper via
:mod:`repro.eval.experiments`.  Builds are memoised per process
(`repro.eval.harness`), so benchmarks that share sketches — Figures 3/4/5
and Figures 9/10 — pay for each (dataset, scheme, Delta) build once no
matter the execution order.

Set ``REPRO_BENCH_SCALE`` to scale the workloads (e.g. ``0.25`` for a
quick pass, ``4`` for closer-to-paper sizes).
"""

from __future__ import annotations

import pytest

#: The paper's three workloads (Section 6.1).
DATASETS = ("Zipf_3", "ClientID", "ObjectID")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Replay every experiment table after the benchmark summary.

    The whole point of the benchmark run is the printed series (the rows
    the paper plots); pytest captures test stdout, so the tables are
    recorded during the run and written out here, where output is live.
    """
    from repro.eval.reporting import SESSION_LINES

    if SESSION_LINES:
        terminalreporter.write_line("")
        terminalreporter.write_line(
            "================ experiment reports (paper series) ================"
        )
        for line in SESSION_LINES:
            terminalreporter.write_line(line)


@pytest.fixture(params=DATASETS)
def dataset(request) -> str:
    """Parametrized dataset name used by the per-dataset figures."""
    return request.param


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are macro-benchmarks (seconds to minutes); re-running
    them for statistical timing would multiply the suite cost for no
    insight, so a single round is recorded.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1, warmup_rounds=0)
