"""Shared benchmark configuration.

Each benchmark regenerates one table/figure of the paper via
:mod:`repro.eval.experiments`.  Builds are memoised per process
(`repro.eval.harness`), so benchmarks that share sketches — Figures 3/4/5
and Figures 9/10 — pay for each (dataset, scheme, Delta) build once no
matter the execution order.

Set ``REPRO_BENCH_SCALE`` to scale the workloads (e.g. ``0.25`` for a
quick pass, ``4`` for closer-to-paper sizes).
"""

from __future__ import annotations

import os

import pytest

#: The paper's three workloads (Section 6.1).
DATASETS = ("Zipf_3", "ClientID", "ObjectID")

#: Cores a parallel measurement needs before its ratios mean anything:
#: below this, forked workers time-slice one core and the "speedup" is
#: pure orchestration overhead.
PARALLEL_MIN_CPUS = 4


def cpu_header() -> dict:
    """CPU facts stamped into every ``BENCH_*.json`` header.

    ``cpus`` is the machine's core count; ``cpu_affinity`` is the set of
    cores this process may actually run on (containers and taskset often
    hand out fewer than the machine has), or ``None`` where the platform
    has no affinity API.  Consumers judging parallel ratios should trust
    the affinity width over the raw core count.
    """
    try:
        affinity: list[int] | None = sorted(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        affinity = None
    return {"cpus": os.cpu_count(), "cpu_affinity": affinity}


def effective_cpus() -> int:
    """Cores actually available to this process (affinity-aware)."""
    header = cpu_header()
    if header["cpu_affinity"]:
        return len(header["cpu_affinity"])
    return header["cpus"] or 1


def parallel_skip_block(minimum: int = PARALLEL_MIN_CPUS) -> dict | None:
    """The explicit skip block parallel benches emit on small hosts.

    Returns ``None`` when the host has enough cores to measure parallel
    scaling honestly; otherwise a ``{"skipped": "cpus < N", ...}`` block
    that replaces the ratios — a recorded 0.4x "speedup" from a 1-core
    container reads like a regression when it is really just time-slicing.
    Set ``REPRO_BENCH_FORCE_PARALLEL=1`` to measure anyway.
    """
    if os.environ.get("REPRO_BENCH_FORCE_PARALLEL") == "1":
        return None
    cores = effective_cpus()
    if cores >= minimum:
        return None
    return {"skipped": f"cpus < {minimum}", "effective_cpus": cores}


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Replay every experiment table after the benchmark summary.

    The whole point of the benchmark run is the printed series (the rows
    the paper plots); pytest captures test stdout, so the tables are
    recorded during the run and written out here, where output is live.
    """
    from repro.eval.reporting import SESSION_LINES

    if SESSION_LINES:
        terminalreporter.write_line("")
        terminalreporter.write_line(
            "================ experiment reports (paper series) ================"
        )
        for line in SESSION_LINES:
            terminalreporter.write_line(line)


@pytest.fixture(params=DATASETS)
def dataset(request) -> str:
    """Parametrized dataset name used by the per-dataset figures."""
    return request.param


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are macro-benchmarks (seconds to minutes); re-running
    them for statistical timing would multiply the suite cost for no
    insight, so a single round is recorded.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1, warmup_rounds=0)
