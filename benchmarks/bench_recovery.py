"""Recovery and durability-scrub cost vs WAL size.

ISSUE 7 adds an fsck pass in front of every recovery, so the scrub's
scan throughput is now on the critical path of restart time.  This
benchmark builds ingest-runtime directories at two sizes and measures:

* ``run_fsck`` scan-only throughput (records/s and MB/s over every CRC
  frame plus checkpoint deserialization probes), and
* end-to-end :meth:`IngestRuntime.recover` time (which includes the
  repair-mode scrub plus WAL tail replay), per replayed record.

Correctness gates ride along — the scrubbed directory must report
clean, and recovery must land exactly on the ingested sequence — so a
fast-but-wrong scan can never score.

Results are written to ``BENCH_recovery.json`` at the repo root (schema
``bench_recovery/v1``).  Scale record counts with ``REPRO_BENCH_SCALE``.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

from conftest import cpu_header, run_once

from repro.eval import harness
from repro.runtime import IngestRuntime, run_fsck
from repro.store import SketchStore, StreamSpec

#: Repo-root output consumed by CI and EXPERIMENTS.md.
OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_recovery.json"

#: Directory sizes in records (scaled by ``REPRO_BENCH_SCALE``).
SIZES = (5_000, 20_000)

BATCH = 2_000


def _make_store() -> SketchStore:
    store = SketchStore(width=256, depth=3, seed=harness.BENCH_SEED)
    store.create(
        StreamSpec(name="urls", delta=8, universe=1024, heavy_hitters=True)
    )
    store.create(StreamSpec(name="ads", delta=8))
    return store


def _build_directory(root: Path, n: int, checkpoint_every: int) -> float:
    runtime = IngestRuntime.create(
        root, _make_store(), checkpoint_every=checkpoint_every
    )
    start = time.perf_counter()
    for lo in range(0, n, BATCH):
        count = min(BATCH, n - lo)
        runtime.ingest_batch(
            {"stream": "urls" if i % 3 else "ads", "item": i % 997}
            for i in range(lo, lo + count)
        )
    build_s = time.perf_counter() - start
    runtime.close()
    return build_s


def _bench_size(tmp_root: Path, base: int) -> dict:
    n = harness.scaled(base)
    # A cadence that never divides n: the WAL keeps a real replay tail,
    # so recovery measures scrub + replay, not just the scrub.
    checkpoint_every = n // 3 + 7
    directory = tmp_root / f"rt-{base}"
    build_s = _build_directory(directory, n, checkpoint_every)

    start = time.perf_counter()
    report = run_fsck(directory)
    scan_s = time.perf_counter() - start
    assert report.clean, "a clean build must scrub clean"
    assert report.max_seq_seen == n

    start = time.perf_counter()
    recovered = IngestRuntime.recover(
        directory, checkpoint_every=checkpoint_every
    )
    recover_s = time.perf_counter() - start
    assert recovered.applied_seq == n, "recovery must land on the last ack"
    replayed = recovered.stats.replayed
    assert replayed > 0, "the cadence must leave a tail to replay"

    return {
        "records": n,
        "checkpoint_every": checkpoint_every,
        "wal_bytes": report.scanned_bytes,
        "build_s": build_s,
        "fsck": {
            "scan_s": scan_s,
            "scanned_records": report.scanned_records,
            "records_per_s": report.scanned_records / scan_s,
            "mb_per_s": report.scanned_bytes / scan_s / 1e6,
        },
        "recover": {
            "recover_s": recover_s,
            "replayed": replayed,
            "replayed_per_s": replayed / recover_s,
        },
    }


def run_benchmark() -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-recovery-") as tmp:
        sizes = {
            str(base): _bench_size(Path(tmp), base) for base in SIZES
        }
    payload = {
        "schema": "bench_recovery/v1",
        "scale": harness.bench_scale(),
        **cpu_header(),
        "sizes": sizes,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    for name, stats in sizes.items():
        print(
            f"recovery[{name}]: fsck "
            f"{stats['fsck']['records_per_s']:.0f} rec/s "
            f"({stats['fsck']['mb_per_s']:.1f} MB/s), recover "
            f"{stats['recover']['replayed_per_s']:.0f} replayed rec/s"
        )
    return payload


def test_recovery_benchmark(benchmark):
    payload = run_once(benchmark, run_benchmark)
    assert OUTPUT.exists()
    for stats in payload["sizes"].values():
        assert stats["fsck"]["records_per_s"] > 0
        assert stats["recover"]["replayed"] > 0


if __name__ == "__main__":
    run_benchmark()
