"""Ablation: join-query time with vs without fractional cascading.

The paper's query-time remarks (Sections 3.3/4.2) improve the
``O(w d log m)`` join-size query to ``O(w d + log m)`` via fractional
cascading [10].  This ablation times historical-window self-join queries
on the same persistent AMS sketch with the per-list binary-search path
and with the :class:`~repro.persistence.timeline.TimelineIndex` path.
Expected shape: identical answers (asserted), with the cascading path's
advantage growing as the history lists get longer (small Delta).
"""

from __future__ import annotations

import time

from conftest import run_once

from repro.eval import harness
from repro.eval.reporting import report

LENGTH = harness.scaled(60_000)
DELTAS = (10, 40, 160)
QUERIES = 20


def run_ablation() -> dict:
    rows = []
    s, t = harness.paper_window(LENGTH)
    for delta in DELTAS:
        sketch = harness.build_sample("Zipf_3", LENGTH, delta)
        windows = [
            (s + i * 37, t - i * 53) for i in range(QUERIES)
        ]

        sketch._timeline = None  # force the binary-search path
        start = time.perf_counter()
        baseline = [sketch.self_join_size(a, b) for a, b in windows]
        bisect_time = time.perf_counter() - start

        sketch.build_timeline()
        start = time.perf_counter()
        cascaded = [sketch.self_join_size(a, b) for a, b in windows]
        cascade_time = time.perf_counter() - start

        assert cascaded == baseline  # pure optimization, same answers
        rows.append(
            (
                delta,
                round(1000 * bisect_time / QUERIES, 3),
                round(1000 * cascade_time / QUERIES, 3),
                round(bisect_time / cascade_time, 2),
            )
        )
    report(
        f"Ablation: self-join query time, binary search vs fractional "
        f"cascading (m={LENGTH}, {QUERIES} queries each)",
        ["delta", "bisect ms/query", "cascade ms/query", "speedup"],
        rows,
        json_name="ablation_timeline",
    )
    return {"rows": rows}


def test_ablation_timeline(benchmark):
    result = run_once(benchmark, run_ablation)
    assert len(result["rows"]) == len(DELTAS)
    for _delta, bisect_ms, cascade_ms, _speedup in result["rows"]:
        assert bisect_ms > 0 and cascade_ms > 0
