"""Figure 4: point-query absolute error vs Delta (window (0.2m, 0.6m],
top-1000 items).

Paper: on Zipf_3 and ObjectID the PLA error sits below the PWC baselines
at every Delta; on the near-uniform ClientID all methods are comparably
poor ("the frequencies are hard to approximate for any method").
Expected shapes here: the same — PLA's mean error at most the baselines'
on skewed data, and every curve bounded by the Theorem 3.1 guarantee.
"""

from __future__ import annotations

from conftest import run_once

from repro.eval import harness, theory
from repro.eval.experiments import LENGTH_MAIN, run_fig4


def test_fig4_point_error_vs_delta(benchmark, dataset):
    result = run_once(benchmark, run_fig4, dataset)
    rows = result["rows"]
    assert len(rows) >= 5
    s, t = harness.paper_window(LENGTH_MAIN)
    window_l1 = t - s
    eps = theory.eps_for_countmin_width(harness.BENCH_WIDTH_CM)
    for delta, pwc_ams_err, pla_err, pwc_cm_err in rows:
        bound = theory.countmin_point_error_bound(eps, delta, window_l1)
        # Mean error respects the per-query high-probability bound.
        assert pla_err <= bound
        assert pwc_cm_err <= bound
        assert pwc_ams_err <= bound + delta  # PWC_AMS pays both endpoints
    if dataset in ("Zipf_3", "ObjectID"):
        # PLA dominates the baselines on the skewed datasets.
        assert all(row[2] <= row[1] * 1.15 for row in rows)
        assert all(row[2] <= row[3] * 1.15 for row in rows)
