"""Ingest throughput: columnar batch pipeline vs the scalar update loop.

The update path refactor hoists hashing through the vectorized
Carter-Wegman evaluators, groups updates into per-(row, col) runs and
feeds the persistence trackers columnar — while staying bit-identical to
per-record ``update()`` (pinned by ``tests/test_batch_ingest.py``).
This benchmark measures what that buys at the paper's ephemeral shape
(w = 20000, d = 7, Section 6.1) on all three workloads: records/second
for the scalar loop vs ``ingest`` (the chunked batch planner), with a
cheap state-equality gate so the speedup can never come from doing less
work.

Results are written to ``BENCH_ingest.json`` at the repo root (schema
documented in EXPERIMENTS.md).  Scale with ``REPRO_BENCH_SCALE``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import run_once

from repro.core.persistent_countmin import PersistentCountMin
from repro.eval import harness
from repro.eval.reporting import report

#: Paper shape (Section 6.1): w = 20000, d = 7.
WIDTH = 20_000
DEPTH = 7
DELTA = 50.0

BATCH_SIZE = 32_768

#: Timing repetitions per path; the minimum is reported (scheduler noise
#: only ever inflates a run, and the minimum hits both paths equally).
REPS = 3

DATASETS = ("Zipf_3", "ObjectID", "ClientID")

#: Repo-root output consumed by CI and EXPERIMENTS.md.
OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_ingest.json"

#: Acceptance floors.  The skewed workload must clear >= 5x: long
#: per-counter runs are where the fused PLA path and the run planner
#: pay off.  The high-cardinality ID workloads spread updates over many
#: counters, so runs stay short of the fused threshold and only the
#: vectorized hashing and run extraction help — the floors pin the
#: batch path to "never slower" within timing noise (measured 1.1-1.8x).
SPEEDUP_FLOOR = {"Zipf_3": 5.0, "ObjectID": 1.0, "ClientID": 1.2}


def _make_sketch() -> PersistentCountMin:
    return PersistentCountMin(
        width=WIDTH, depth=DEPTH, delta=DELTA, seed=harness.BENCH_SEED
    )


def _bench_workload(name: str) -> dict:
    length = harness.scaled(200_000)
    stream = harness.get_dataset(name, length)
    times = stream.times.tolist()
    items = stream.items.tolist()
    counts = stream.counts.tolist()

    scalar_s = float("inf")
    for _ in range(REPS):
        scalar = _make_sketch()
        start = time.perf_counter()
        for t, i, c in zip(times, items, counts):
            scalar.update(i, count=c, time=t)
        scalar_s = min(scalar_s, time.perf_counter() - start)

    batch_s = float("inf")
    for _ in range(REPS):
        batched = _make_sketch()
        start = time.perf_counter()
        batched.ingest(stream, batch_size=BATCH_SIZE)
        batch_s = min(batch_s, time.perf_counter() - start)

    # Equality gate (cheap proxy; the bit-level property is pinned by
    # tests/test_batch_ingest.py): identical persistence footprint and
    # identical answers on a spread of historical point queries.
    if batched.persistence_words() != scalar.persistence_words():
        raise AssertionError(
            f"{name}: batch ingest changed the persistence footprint"
        )
    t_end = scalar.now
    for item in items[:: max(1, len(items) // 50)]:
        for s, t in ((0, t_end), (t_end // 3, 2 * t_end // 3)):
            if batched.point(item, s, t) != scalar.point(item, s, t):
                raise AssertionError(
                    f"{name}: batch ingest diverges at point({item}, "
                    f"{s}, {t})"
                )

    return {
        "length": length,
        "batch_size": BATCH_SIZE,
        "equal": True,
        "scalar_s": scalar_s,
        "scalar_rps": length / scalar_s,
        "batch_s": batch_s,
        "batch_rps": length / batch_s,
        "speedup": scalar_s / batch_s,
    }


def run_benchmark() -> dict:
    results = {}
    rows = []
    for name in DATASETS:
        stats = _bench_workload(name)
        results[name] = stats
        rows.append(
            (
                name,
                stats["length"],
                round(stats["scalar_rps"], 0),
                round(stats["batch_rps"], 0),
                round(stats["speedup"], 1),
            )
        )
    payload = {
        "schema": "bench_ingest_throughput/v1",
        "scale": harness.bench_scale(),
        "shape": {"width": WIDTH, "depth": DEPTH, "delta": DELTA},
        "workloads": results,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    report(
        f"Ingest throughput: batch vs scalar (w={WIDTH}, d={DEPTH}, "
        f"delta={DELTA}, batch={BATCH_SIZE})",
        [
            "dataset",
            "records",
            "scalar rec/s",
            "batch rec/s",
            "speedup",
        ],
        rows,
        json_name="ingest_throughput",
    )
    return payload


def test_ingest_throughput(benchmark):
    payload = run_once(benchmark, run_benchmark)
    assert OUTPUT.exists()
    for name in DATASETS:
        stats = payload["workloads"][name]
        assert stats["equal"]
        floor = SPEEDUP_FLOOR[name]
        assert stats["speedup"] >= floor, (
            f"{name}: batch ingest only {stats['speedup']:.1f}x faster "
            f"than the scalar loop (floor {floor}x)"
        )


if __name__ == "__main__":
    run_benchmark()
