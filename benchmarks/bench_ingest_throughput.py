"""Ingest throughput: columnar batch pipeline vs the scalar update loop.

The update path refactor hoists hashing through the vectorized
Carter-Wegman evaluators, groups updates into per-(row, col) runs and
feeds the persistence trackers columnar — while staying bit-identical to
per-record ``update()`` (pinned by ``tests/test_batch_ingest.py``).
This benchmark measures what that buys at the paper's ephemeral shape
(w = 20000, d = 7, Section 6.1) on all three workloads: records/second
for the scalar loop vs ``ingest`` (the chunked batch planner), with a
cheap state-equality gate so the speedup can never come from doing less
work.  Each workload is additionally ingested through 2- and 4-worker
row-partitioned pools (the final merge is part of the timed cost), with
the same equality gate; the parallel scaling floor only binds on hosts
with >= 4 cores.

The two-stage update buffer (ISSUE 10) rides in front of all of that:
``exact`` mode stages and replays verbatim (bit-identical, gated by the
same equality proxy), while ``coalesce`` merges same-counter touches
within a bounded window before they reach the trackers — that is what
finally cracks the high-cardinality ingest wall, so ObjectID/ClientID
carry a >= 5x coalesced floor with an explicit error-bound gate in
place of the exact-equality one.

Results are written to ``BENCH_ingest.json`` at the repo root (schema
``bench_ingest_throughput/v4``, documented in EXPERIMENTS.md; v2 added
``cpus``/``workers`` and the per-workload ``parallel`` block to v1; v3
adds the ``cpu_affinity`` header and replaces the parallel ratios with
an explicit ``{"skipped": "cpus < 4"}`` block on hosts too small to
measure them honestly; v4 adds the per-workload ``buffered`` block with
timed exact and coalesce legs).  Scale with ``REPRO_BENCH_SCALE``.
"""

from __future__ import annotations

import gc
import json
import time
from contextlib import contextmanager
from pathlib import Path

from conftest import cpu_header, effective_cpus, parallel_skip_block, run_once

from repro.core.persistent_countmin import PersistentCountMin
from repro.eval import harness
from repro.eval.reporting import report

#: Paper shape (Section 6.1): w = 20000, d = 7.
WIDTH = 20_000
DEPTH = 7
DELTA = 50.0

BATCH_SIZE = 32_768

#: Timing repetitions per path; the minimum is reported (scheduler noise
#: only ever inflates a run, and the minimum hits both paths equally).
#: Seven reps, not three: the committed numbers gate sub-1.5x ratios
#: (the ObjectID no-regression invariant), which best-of-3 resolves
#: only marginally on a shared 1-CPU container.
REPS = 7

DATASETS = ("Zipf_3", "ObjectID", "ClientID")

#: Repo-root output consumed by CI and EXPERIMENTS.md.
OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_ingest.json"

#: Acceptance floors.  The skewed workload must clear >= 5x: long
#: per-counter runs are where the fused PLA path and the run planner
#: pay off.  The high-cardinality ID workloads spread updates over many
#: counters, so runs stay short of the fused threshold and only the
#: vectorized hashing and run extraction help — the floors pin the
#: batch path to "never slower" (measured 1.2-1.3x with the collector
#: quiesced; GC pauses used to eat the margin, see ``_gc_quiesced``).
SPEEDUP_FLOOR = {"Zipf_3": 5.0, "ObjectID": 1.1, "ClientID": 1.2}

#: Pool widths measured for the parallel execution layer.
WORKER_WIDTHS = (2, 4)

#: Update-buffer window for the buffered legs (records staged before a
#: flush feeds the batch planner).  One window of the paper-shape
#: stream is enough for coalescing to find the repeat touches that the
#: high-cardinality workloads spread across many counters.
BUFFER_WINDOW = 32_768

#: Coalesced-ingest floor over the *scalar* loop.  The ID workloads are
#: the tentpole target — their short-run regime is exactly what
#: coalescing collapses (measured 6-16x; Zipf's long runs coalesce to
#: almost nothing and measure >100x, floored loosely at the same 5x).
BUFFERED_FLOOR = {"Zipf_3": 5.0, "ObjectID": 5.0, "ClientID": 5.0}

#: 4-worker floor over the serial batch path, gated on the machine
#: actually having >= 4 cores: row partitioning only buys wall-clock
#: when the forked workers can run concurrently, so smaller hosts emit
#: a skip block instead of ratios (a 1-core container measures pure
#: orchestration overhead).  Zipf_3 joins the floor with the
#: shared-memory transport: zero-copy batch publication removes the
#: pickle-per-batch cost that used to cap the skewed workload.
PARALLEL_FLOOR = 2.5
PARALLEL_FLOOR_DATASETS = ("Zipf_3", "ObjectID", "ClientID")


def _make_sketch() -> PersistentCountMin:
    return PersistentCountMin(
        width=WIDTH, depth=DEPTH, delta=DELTA, seed=harness.BENCH_SEED
    )


@contextmanager
def _gc_quiesced():
    """Keep collector pauses out of the timed region.

    Each rep retires a 140k-tracker sketch; once two workloads' worth
    of those are dead, cyclic-GC pauses land on whichever leg happens
    to be running and skew sub-1.5x ratios by 20%+ on a 1-CPU host
    (measured: the ClientID batch/scalar ratio read 0.94 with the
    collector on, 1.23 with it quiesced).  Collect the backlog up
    front, then keep the collector off inside the timing."""
    gc.collect()
    gc.disable()
    try:
        yield
    finally:
        gc.enable()


def _bench_workload(name: str, skip_parallel: dict | None) -> dict:
    length = harness.scaled(200_000)
    stream = harness.get_dataset(name, length)
    times = stream.times.tolist()
    items = stream.items.tolist()
    counts = stream.counts.tolist()

    scalar_s = float("inf")
    for _ in range(REPS):
        scalar = _make_sketch()
        with _gc_quiesced():
            start = time.perf_counter()
            for t, i, c in zip(times, items, counts):
                scalar.update(i, count=c, time=t)
            scalar_s = min(scalar_s, time.perf_counter() - start)

    batch_s = float("inf")
    for _ in range(REPS):
        batched = _make_sketch()
        with _gc_quiesced():
            start = time.perf_counter()
            batched.ingest(stream, batch_size=BATCH_SIZE)
            batch_s = min(batch_s, time.perf_counter() - start)

    # Parallel execution layer: same batch plan fanned over forked
    # row-workers on the shared-memory transport.  The final merge
    # (detach) is part of the timed cost — that is what a caller pays
    # before the state is queryable.  Hosts below the core floor emit
    # the skip block instead of time-sliced ratios.
    parallel: dict = dict(skip_parallel) if skip_parallel else {}
    for workers in () if skip_parallel else WORKER_WIDTHS:
        par_s = float("inf")
        par_sketch = None
        for _ in range(REPS):
            par_sketch = _make_sketch()
            par_sketch.set_workers(workers)
            with _gc_quiesced():
                start = time.perf_counter()
                par_sketch.ingest(stream, batch_size=BATCH_SIZE)
                par_sketch.detach_workers()
                par_s = min(par_s, time.perf_counter() - start)
        _assert_equal_answers(f"{name}[workers={workers}]",
                              par_sketch, scalar, items)
        parallel[str(workers)] = {
            "equal": True,
            "batch_s": par_s,
            "batch_rps": length / par_s,
            "speedup_vs_scalar": scalar_s / par_s,
            "speedup_vs_batch": batch_s / par_s,
        }

    _assert_equal_answers(name, batched, scalar, items)

    # Two-stage buffered legs.  The timed cost includes the final
    # drain — that is what a caller pays before the state is queryable.
    # Exact mode must stay bit-identical (same equality proxy as the
    # batch path); coalesce is the lossy fast lane and is gated on the
    # documented widened error envelope instead.
    exact_s = float("inf")
    exact_sketch = None
    for _ in range(REPS):
        exact_sketch = _make_sketch()
        exact_sketch.configure_buffer(window=BUFFER_WINDOW, mode="exact")
        with _gc_quiesced():
            start = time.perf_counter()
            exact_sketch.ingest(stream, batch_size=BATCH_SIZE)
            exact_sketch.flush_buffer()
            exact_s = min(exact_s, time.perf_counter() - start)
    _assert_equal_answers(
        f"{name}[buffered=exact]", exact_sketch, scalar, items
    )

    coalesce_s = float("inf")
    coalesce_sketch = None
    for _ in range(REPS):
        coalesce_sketch = _make_sketch()
        coalesce_sketch.configure_buffer(
            window=BUFFER_WINDOW, mode="coalesce"
        )
        with _gc_quiesced():
            start = time.perf_counter()
            coalesce_sketch.ingest(stream, batch_size=BATCH_SIZE)
            coalesce_sketch.flush_buffer()
            coalesce_s = min(coalesce_s, time.perf_counter() - start)
    mass = coalesce_sketch.buffer_stats()["max_item_mass"]
    _assert_within_envelope(
        f"{name}[buffered=coalesce]", coalesce_sketch, scalar, items, mass
    )

    return {
        "length": length,
        "batch_size": BATCH_SIZE,
        "equal": True,
        "scalar_s": scalar_s,
        "scalar_rps": length / scalar_s,
        "batch_s": batch_s,
        "batch_rps": length / batch_s,
        "speedup": scalar_s / batch_s,
        "parallel": parallel,
        "buffered": {
            "window": BUFFER_WINDOW,
            "exact": {
                "equal": True,
                "buffered_s": exact_s,
                "buffered_rps": length / exact_s,
                "speedup_vs_scalar": scalar_s / exact_s,
                "speedup_vs_batch": batch_s / exact_s,
            },
            "coalesce": {
                "within_bounds": True,
                "max_item_mass": mass,
                "buffered_s": coalesce_s,
                "buffered_rps": length / coalesce_s,
                "speedup_vs_scalar": scalar_s / coalesce_s,
                "speedup_vs_batch": batch_s / coalesce_s,
            },
        },
    }


def _assert_equal_answers(name, candidate, scalar, items) -> None:
    """Cheap equality proxy (the bit-level property is pinned by
    tests/test_batch_ingest.py and tests/test_parallel.py): identical
    persistence footprint and identical answers on a spread of
    historical point queries."""
    if candidate.persistence_words() != scalar.persistence_words():
        raise AssertionError(
            f"{name}: batch ingest changed the persistence footprint"
        )
    t_end = scalar.now
    for item in items[:: max(1, len(items) // 50)]:
        for s, t in ((0, t_end), (t_end // 3, 2 * t_end // 3)):
            if candidate.point(item, s, t) != scalar.point(item, s, t):
                raise AssertionError(
                    f"{name}: batch ingest diverges at point({item}, "
                    f"{s}, {t})"
                )


def _assert_within_envelope(name, lossy, scalar, items, max_item_mass):
    """The coalesce gate: answers may differ from the exact reference
    only by the documented widened envelope — the +/-delta PLA recording
    error per query endpoint for *each* sketch (both record within delta
    of their own trajectory), plus the per-counter mass a window could
    still have been holding at an endpoint that lands mid-history.  The
    final drain means full-range queries carry no mass term at the right
    endpoint; the single conservative slack keeps the gate simple."""
    t_end = scalar.now
    slack = 4 * DELTA + 2 * max_item_mass
    for item in items[:: max(1, len(items) // 50)]:
        for s, t in ((0, t_end), (t_end // 3, 2 * t_end // 3)):
            got = lossy.point(item, s, t)
            want = scalar.point(item, s, t)
            if abs(got - want) > slack:
                raise AssertionError(
                    f"{name}: coalesced answer {got} strays "
                    f"{abs(got - want):.1f} from exact {want} at "
                    f"point({item}, {s}, {t}) — envelope is {slack:.1f}"
                )


def run_benchmark() -> dict:
    header = cpu_header()
    skip_parallel = parallel_skip_block()
    results = {}
    rows = []
    for name in DATASETS:
        stats = _bench_workload(name, skip_parallel)
        par = stats["parallel"]
        buffered = stats["buffered"]
        rows.append(
            (
                name,
                stats["length"],
                round(stats["scalar_rps"], 0),
                round(stats["batch_rps"], 0),
                round(stats["speedup"], 1),
                round(par["2"]["batch_rps"], 0) if "2" in par else "skipped",
                round(par["4"]["batch_rps"], 0) if "4" in par else "skipped",
                round(buffered["coalesce"]["buffered_rps"], 0),
                round(buffered["coalesce"]["speedup_vs_scalar"], 1),
            )
        )
        results[name] = stats
    payload = {
        "schema": "bench_ingest_throughput/v4",
        "scale": harness.bench_scale(),
        **header,
        "workers": list(WORKER_WIDTHS),
        "buffer_window": BUFFER_WINDOW,
        "shape": {"width": WIDTH, "depth": DEPTH, "delta": DELTA},
        "workloads": results,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    report(
        f"Ingest throughput: batch vs scalar (w={WIDTH}, d={DEPTH}, "
        f"delta={DELTA}, batch={BATCH_SIZE}, cpus={header['cpus']})",
        [
            "dataset",
            "records",
            "scalar rec/s",
            "batch rec/s",
            "speedup",
            "2-worker rec/s",
            "4-worker rec/s",
            "coalesced rec/s",
            "coalesced speedup",
        ],
        rows,
        json_name="ingest_throughput",
    )
    return payload


def test_ingest_throughput(benchmark):
    payload = run_once(benchmark, run_benchmark)
    assert OUTPUT.exists()
    for name in DATASETS:
        stats = payload["workloads"][name]
        assert stats["equal"]
        floor = SPEEDUP_FLOOR[name]
        assert stats["speedup"] >= floor, (
            f"{name}: batch ingest only {stats['speedup']:.1f}x faster "
            f"than the scalar loop (floor {floor}x)"
        )
        buffered = stats["buffered"]
        assert buffered["exact"]["equal"]
        assert buffered["coalesce"]["within_bounds"]
        got = buffered["coalesce"]["speedup_vs_scalar"]
        assert got >= BUFFERED_FLOOR[name], (
            f"{name}: coalesced ingest only {got:.1f}x over the scalar "
            f"loop (floor {BUFFERED_FLOOR[name]}x)"
        )
        parallel = stats["parallel"]
        if "skipped" in parallel:
            # Small host: the skip block must be explicit, not ratios.
            assert parallel["skipped"] == "cpus < 4", parallel
            continue
        for workers in WORKER_WIDTHS:
            assert parallel[str(workers)]["equal"]
    # Parallel scaling floor only binds where the cores exist to scale
    # onto; elsewhere the skip block above already documented why (and a
    # forced run on a small host records numbers without gating them).
    measured = "skipped" not in payload["workloads"][DATASETS[0]]["parallel"]
    if measured and effective_cpus() >= 4:
        for name in PARALLEL_FLOOR_DATASETS:
            got = payload["workloads"][name]["parallel"]["4"][
                "speedup_vs_batch"
            ]
            assert got >= PARALLEL_FLOOR, (
                f"{name}: 4-worker ingest only {got:.1f}x over the "
                f"serial batch path (floor {PARALLEL_FLOOR}x)"
            )


if __name__ == "__main__":
    run_benchmark()
