"""Figure 1: frequency of the top-5 URLs over time, from the persistent
sketch alone.

Paper: the approximated curves ("-A") track the true curves ("-T")
closely at every day, demonstrating that the whole history is queryable
without the raw stream.  Expected shape here: per-checkpoint estimates
within the Theorem 3.1 bound of truth for every top-5 item.
"""

from __future__ import annotations

from conftest import run_once

from repro.eval import harness, theory
from repro.eval.experiments import LENGTH_STORY, run_fig1

DELTA = 60


def test_fig1_frequency_over_time(benchmark):
    result = run_once(benchmark, run_fig1, LENGTH_STORY, DELTA)
    rows = result["rows"]
    assert len(rows) == 10
    eps = theory.eps_for_countmin_width(harness.BENCH_WIDTH_CM)
    for row in rows:
        day = row[0]
        t = LENGTH_STORY * day // 10
        bound = theory.countmin_point_error_bound(eps, DELTA, t)
        pairs = list(zip(row[1::2], row[2::2]))
        for true_freq, estimate in pairs:
            assert abs(estimate - true_freq) <= bound
        # Running frequencies are non-decreasing in time for each URL.
    for col in range(1, 11, 2):
        series = [row[col] for row in rows]
        assert series == sorted(series)
