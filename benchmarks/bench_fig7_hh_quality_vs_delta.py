"""Figure 7: heavy-hitter precision and recall vs Delta (phi fixed).

Paper: both schemes favour precision over recall (they return subsets of
the true heavy hitters); at fixed Delta, PWC_CountMin has slightly better
precision while PLA has significantly better recall, with PWC's recall
decaying as Delta grows.  Expected shapes here: PLA's recall stays high
across the sweep and beats PWC's at the largest Delta by a wide margin
on the skewed datasets.
"""

from __future__ import annotations

from conftest import run_once

from repro.eval.experiments import run_fig7


def test_fig7_hh_quality_vs_delta(benchmark, dataset):
    result = run_once(benchmark, run_fig7, dataset)
    rows = result["rows"]
    assert len(rows) >= 5
    for _delta, pla_p, pla_r, pwc_p, pwc_r in rows:
        for value in (pla_p, pla_r, pwc_p, pwc_r):
            assert 0.0 <= value <= 1.0
    # PLA recall is stable across the Delta sweep.
    pla_recalls = [row[2] for row in rows]
    assert min(pla_recalls) >= 0.5
    if dataset in ("Zipf_3", "ObjectID"):
        # PWC recall collapses at large Delta; PLA's does not (the
        # paper's headline for this figure).
        assert rows[-1][2] >= rows[-1][4] + 0.2
