"""Extension: the persistence techniques under the turnstile model.

The paper states (Section 1.2) that both persistent sketches work in the
turnstile model, and Theorem 3.3 is proved for the *random turnstile
model* directly.  The main evaluation only exercises the cash-register
traces, so this extension bench ingests a random turnstile stream
(insertions and matched deletions) and measures point accuracy and
space.  Expected shape: Theorem 3.1/4.1-style errors and the same space
ordering as Figure 3, with PLA space even smaller — deletions slow the
counters' drift, so single lines survive longer.
"""

from __future__ import annotations

from conftest import run_once

from repro.core.persistent_ams import PersistentAMS
from repro.core.persistent_countmin import PersistentCountMin, PWCCountMin
from repro.eval import harness
from repro.eval.metrics import mean_absolute_error
from repro.eval.reporting import report
from repro.streams.generators import turnstile_stream
from repro.streams.truth import GroundTruth

LENGTH = harness.scaled(30_000)
DELTAS = (10, 40, 160)


def run_extension() -> dict:
    stream = turnstile_stream(LENGTH, universe=4096, seed=13)
    truth = GroundTruth(stream)
    s, t = harness.paper_window(LENGTH)
    items = [item for item, _ in truth.top_k(200, s, t)]
    actual = [float(truth.frequency(item, s, t)) for item in items]

    rows = []
    for delta in DELTAS:
        shape = dict(width=1024, depth=5, seed=harness.BENCH_SEED)
        pla = PersistentCountMin(delta=delta, **shape)
        pwc = PWCCountMin(delta=delta, **shape)
        sample = PersistentAMS(delta=delta, independent_copies=1, **shape)
        for sketch in (pla, pwc, sample):
            sketch.ingest(stream)
        row = [delta]
        for sketch in (pla, pwc, sample):
            estimates = [sketch.point(item, s, t) for item in items]
            row.append(round(mean_absolute_error(estimates, actual), 2))
        row += [
            pla.persistence_words(),
            pwc.persistence_words(),
            sample.persistence_words(),
        ]
        rows.append(tuple(row))
    report(
        f"Extension: turnstile model, point error and space (m={LENGTH}, "
        f"uniform +/-1 stream)",
        [
            "delta",
            "PLA err",
            "PWC_CM err",
            "Sample err",
            "PLA words",
            "PWC_CM words",
            "Sample words",
        ],
        rows,
        json_name="ext_turnstile",
    )
    return {"rows": rows, "length": LENGTH}


def test_ext_turnstile(benchmark):
    result = run_once(benchmark, run_extension)
    for delta, pla_e, pwc_e, sample_e, pla_w, pwc_w, sample_w in result["rows"]:
        # Theorem 3.1-style error: dominated by delta on this stream.
        assert pla_e <= 2 * delta + 5
        assert pwc_e <= 2 * delta + 5
        # Space ordering of Figure 3 carries over.
        assert pla_w <= pwc_w * 1.5 + 30
        assert sample_w > 0
