"""Figure 3: sketch size (persistence words) vs error parameter Delta.

Paper: (a) on Zipf_3 the PLA size is up to 500x below the worst-case
``O(d m / Delta)``, reflecting Theorem 3.3's ``1/Delta^2`` behaviour;
Sample tracks its theory curve exactly on every dataset; (b) on ClientID
the PWC baselines fall off a cliff once Delta exceeds most counter
values; (c) ObjectID sits between.  Expected shapes here: Sample within
~15% of theory everywhere; PLA at least 10x below the PWC baselines on
the skewed datasets; every curve non-increasing in Delta.
"""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.eval.experiments import run_fig3


def test_fig3_space_vs_delta(benchmark, dataset):
    result = run_once(benchmark, run_fig3, dataset)
    rows = result["rows"]
    assert len(rows) >= 5
    for _delta, sample, pwc_ams, pla, pwc_cm, sample_theory in rows:
        # Sample's size is distribution-free: it matches theory.
        assert sample == pytest.approx(sample_theory, rel=0.15)
        # PLA never exceeds the PWC_CountMin baseline.
        assert pla <= pwc_cm * 1.5 + 30
    # Sizes are non-increasing in Delta for each scheme.
    for col in range(1, 5):
        series = [row[col] for row in rows]
        assert all(a >= b for a, b in zip(series, series[1:]))
    if dataset in ("Zipf_3", "ObjectID"):
        # The paper's headline: PLA far below the baselines on skewed data.
        total_pla = sum(row[3] for row in rows)
        total_pwc = sum(row[4] for row in rows)
        assert total_pla * 10 <= total_pwc
