"""Figure 10: self-join size relative error vs actual sketch size.

Paper: Sample provides the significantly better error-space tradeoff —
on ClientID its space at equal error is 10-100x smaller than the
baselines'; on ObjectID the gap is 5-10x at small sizes; on Zipf_3 it is
2-5x.  Expected shape here: on ClientID, at comparable sketch sizes the
Sample error is far below the baselines', and Sample's space is exactly
controllable by Delta (strictly decreasing in the sweep).
"""

from __future__ import annotations

from conftest import run_once

from repro.eval.experiments import run_fig10


def test_fig10_selfjoin_error_vs_space(benchmark, dataset):
    result = run_once(benchmark, run_fig10, dataset)
    rows = result["rows"]
    assert len(rows) >= 5
    # Sample's space is precisely controllable via Delta (the paper's
    # point about choosing Delta without knowing the distribution).
    sample_words = [row[1] for row in rows]
    assert all(a > b for a, b in zip(sample_words, sample_words[1:]))
    if dataset == "ClientID":
        # Where baselines still spend space (small Delta), Sample's error
        # is far lower at the same order of size.
        _delta, s_w, s_e, a_w, a_e, c_w, c_e = rows[0]
        assert s_e < min(a_e, c_e)
