"""Figure 6: heavy-hitter structure size vs Delta.

Paper: the dyadic construction scales the point-query space by ~log n,
so the Figure 3 tradeoffs reappear a level up — PLA below PWC_CountMin
on the skewed datasets, both shrinking with Delta.  Expected shape here:
the same dominance and monotonicity.
"""

from __future__ import annotations

from conftest import run_once

from repro.eval.experiments import run_fig6


def test_fig6_hh_space_vs_delta(benchmark, dataset):
    result = run_once(benchmark, run_fig6, dataset)
    rows = result["rows"]
    assert len(rows) >= 5
    for _delta, pla_words, pwc_words in rows:
        assert pla_words >= 0
        assert pwc_words >= 0
    # Non-increasing in Delta.
    for col in (1, 2):
        series = [row[col] for row in rows]
        assert all(a >= b for a, b in zip(series, series[1:]))
    if dataset in ("Zipf_3", "ObjectID"):
        total_pla = sum(row[1] for row in rows)
        total_pwc = sum(row[2] for row in rows)
        assert total_pla <= total_pwc
