"""Figure 9: self-join size relative error vs Delta.

Paper: Sample gives better accuracy in general — 5-10x better than the
PWC baselines on ObjectID at small sketch sizes, dramatically better on
ClientID where the baselines' error rises to ~1 (they record nothing for
small counters), and 2-5x better on Zipf_3; ``Sample_Theory`` bounds the
Sample error from above.  Expected shapes here: the same — in particular
Sample must beat both baselines on ClientID at small Delta, and stay
within its theory bound everywhere.
"""

from __future__ import annotations

from conftest import run_once

from repro.eval.experiments import run_fig9


def test_fig9_selfjoin_error_vs_delta(benchmark, dataset):
    result = run_once(benchmark, run_fig9, dataset)
    rows = result["rows"]
    assert len(rows) >= 5
    for _delta, sample, pwc_ams, pwc_cm, theory_bound in rows:
        assert sample >= 0 and pwc_ams >= 0 and pwc_cm >= 0
        # The Chebyshev-style bound holds on average with slack.
        assert sample <= max(theory_bound * 3.0, 0.15)
    if dataset == "ClientID":
        # The baselines collapse to ~100% error at moderate Delta while
        # Sample remains informative at the small end of the sweep.
        assert rows[0][1] < 0.5
        assert rows[-1][2] > 0.8
        assert rows[-1][3] > 0.8
