"""Figure 2: stream processing time for each persistence scheme.

Paper: Sample is the fastest persistent scheme, followed by PWC_CountMin
and PWC_AMS, with PLA the slowest (cost growing mildly with log Delta);
all stay within a small constant factor of the ephemeral sketch.
Expected shape here: the same ordering between Sample and PLA, and every
persistent scheme within a modest constant factor of the ephemeral
baseline (the constant is larger in Python, where per-update overhead
dominates).
"""

from __future__ import annotations

from conftest import run_once

from repro.eval.experiments import run_fig2


def test_fig2_update_time(benchmark):
    result = run_once(benchmark, run_fig2)
    rows = result["rows"]
    assert len(rows) >= 3
    for row in rows:
        _delta, sample_t, pwc_ams_t, pla_t, pwc_cm_t, pla_batch_t, ephemeral_t = row
        # Every measurement is a real, positive duration.
        for value in (
            sample_t, pwc_ams_t, pla_t, pwc_cm_t, pla_batch_t, ephemeral_t
        ):
            assert value > 0
        # The paper's headline: persistence costs only a small constant
        # factor over the ephemeral sketch.
        assert max(sample_t, pwc_ams_t, pla_t, pwc_cm_t) < 25 * ephemeral_t
        # The columnar batch planner beats the scalar update loop.
        assert pla_batch_t < pla_t
    # Sample is cheaper than PLA at every delta (paper's ordering).
    assert all(row[1] < row[3] for row in rows)
