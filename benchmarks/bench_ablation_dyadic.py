"""Ablation: exact vs hashed small levels in the dyadic hierarchy.

DESIGN.md records the decision to count the high dyadic levels (few
ranges, all of them active and massive) with exact per-range counters
instead of a hashed Count-Min row of the same size.  This ablation
compares range-sum accuracy and structure size for both variants.
Expected shape: the exact variant's range-sum error is a fraction of the
hashed variant's at equal Delta, at comparable or smaller size (one row
instead of d).
"""

from __future__ import annotations

from conftest import run_once

from repro.eval import harness
from repro.eval.reporting import report
from repro.streams.truth import GroundTruth
from repro.core.heavy_hitters import PersistentHeavyHitters

LENGTH = harness.scaled(20_000)
DELTA = 8
RANGES = [(0, 63), (100, 400), (37, 1500)]


def build(exact: bool) -> tuple[PersistentHeavyHitters, GroundTruth]:
    stream = harness.get_compact_dataset("ObjectID", LENGTH)
    structure = PersistentHeavyHitters(
        universe=stream.universe or int(stream.items.max()) + 1,
        width=512,
        depth=3,
        delta=DELTA,
        seed=5,
        exact_small_levels=exact,
    )
    structure.ingest(stream)
    return structure, harness.get_compact_truth("ObjectID", LENGTH)


def run_ablation() -> dict:
    s, t = harness.paper_window(LENGTH)
    rows = []
    variants = {}
    for exact in (True, False):
        structure, truth = build(exact)
        errors = []
        for lo, hi in RANGES:
            hi = min(hi, structure.universe - 1)
            actual = sum(
                truth.frequency(item, s, t) for item in range(lo, hi + 1)
            )
            estimate = structure.range_sum(lo, hi, s, t)
            errors.append(abs(estimate - actual))
        variants[exact] = (structure.persistence_words(), errors)
        rows.append(
            (
                "exact" if exact else "hashed",
                structure.persistence_words(),
                *[round(e, 1) for e in errors],
            )
        )
    report(
        f"Ablation: exact vs hashed small dyadic levels "
        f"(ObjectID, m={LENGTH}, delta={DELTA}, window ({s}, {t}])",
        ["levels", "words", "err[0,63]", "err[100,400]", "err[37,1500]"],
        rows,
        json_name="ablation_dyadic",
    )
    return {"variants": variants}


def test_ablation_dyadic(benchmark):
    result = run_once(benchmark, run_ablation)
    exact_words, exact_errors = result["variants"][True]
    hashed_words, hashed_errors = result["variants"][False]
    # The exact variant is never less accurate in aggregate.
    assert sum(exact_errors) <= sum(hashed_errors)
