"""Table 1: top-5 most requested URLs, actual count vs estimation.

Paper: the five most frequent URLs of the WorldCup log and their Count-Min
estimates at the end of the stream; the estimates overshoot truth only
slightly (relative error < 0.1%).  Expected shape here: the same — each
estimate is an overestimate (cash-register Count-Min) within a small
fraction of the true count.
"""

from __future__ import annotations

from conftest import run_once

from repro.eval.experiments import run_table1


def test_table1_topk(benchmark):
    result = run_once(benchmark, run_table1)
    rows = result["rows"]
    assert len(rows) == 5
    for _url, actual, estimate in rows:
        # Count-Min never underestimates in the cash-register model.
        assert estimate >= actual
        # The paper's Table 1 shows sub-percent overshoot; allow 5%.
        assert estimate <= actual * 1.05
    # The top-5 list is sorted by true frequency.
    actuals = [actual for _, actual, _ in rows]
    assert actuals == sorted(actuals, reverse=True)
