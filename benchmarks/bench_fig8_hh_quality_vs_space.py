"""Figure 8: heavy-hitter precision and recall vs actual sketch size.

Paper: on Zipf_3 and ObjectID the PWC recall becomes unusable once the
sketch shrinks toward 10^4 words, while PLA retains both high recall and
high precision at (much) smaller sizes; on ClientID there is no clear
winner.  Expected shape here: at the smallest sketch sizes in the sweep,
PLA's recall exceeds PWC's on the skewed datasets.
"""

from __future__ import annotations

from conftest import run_once

from repro.eval.experiments import run_fig8


def test_fig8_hh_quality_vs_space(benchmark, dataset):
    result = run_once(benchmark, run_fig8, dataset)
    rows = result["rows"]
    assert len(rows) >= 5
    for row in rows:
        _delta, pla_w, pla_p, pla_r, pwc_w, pwc_p, pwc_r = row
        assert pla_w >= 0 and pwc_w >= 0
        for value in (pla_p, pla_r, pwc_p, pwc_r):
            assert 0.0 <= value <= 1.0
    if dataset in ("Zipf_3", "ObjectID"):
        # At the large-Delta end both structures are small, and PLA keeps
        # recall where PWC loses it.
        smallest = rows[-1]
        assert smallest[1] <= smallest[4]  # PLA smaller or equal space
        assert smallest[3] >= smallest[6]  # PLA recall at least PWC's
