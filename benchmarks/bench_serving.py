"""Serving-daemon throughput and latency under concurrent clients.

ISSUE 8's acceptance benchmark: a :class:`~repro.server.SketchServer`
on a real TCP socket, driven by one writer client plus four reader
clients concurrently (five live connections, mixed read/write).  Reads
cover the protocol's query verbs — ``point``, ``point_many``,
``heavy_hitters``, ``self_join_size`` — and are served through the
frozen/live cutover router while the writer keeps the live tail moving
and the background ticker keeps re-freezing.

A correctness gate rides along: after the load, frozen-routed answers
must be bit-equal to live-routed answers at the frozen horizon, so a
fast-but-wrong server can never score.

On hosts with >= 4 cores the load runs a second time with
``query_workers=4``: the serving view is published as one shared-memory
segment, four forked reader processes attach to it (one physical copy
of the frozen tables — per-worker RSS is recorded as evidence), and the
aggregate qps is compared against the in-process baseline.  Smaller
hosts emit an explicit ``{"skipped": "cpus < 4"}`` block instead of
time-sliced ratios.

Results are written to ``BENCH_serving.json`` at the repo root (schema
``bench_serving/v2``; v2 adds the ``cpus``/``cpu_affinity`` header and
the ``query_workers`` block to v1) with overall qps plus p50/p99
latency per op class.  Scale op counts with ``REPRO_BENCH_SCALE``.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from pathlib import Path

from conftest import cpu_header, parallel_skip_block, run_once

from repro.eval import harness
from repro.runtime import IngestRuntime
from repro.server import Client, ServingRuntime, SketchServer
from repro.store import SketchStore, StreamSpec

#: Repo-root output consumed by CI and EXPERIMENTS.md.
OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_serving.json"

N_READERS = 4
UNIVERSE = 1024
PRELOAD = 4_000  # records ingested (and frozen) before timing starts
WRITE_RECORDS = 6_000  # writer-client records during the timed window
WRITE_BATCH = 200
READS_PER_CLIENT = 1_500  # point ops; the rarer verbs ride along below
CHECKPOINT_EVERY = 1_000


def _make_store() -> SketchStore:
    store = SketchStore(width=256, depth=3, join_width=256, seed=harness.BENCH_SEED)
    store.create(
        StreamSpec(
            name="urls",
            delta=8,
            universe=UNIVERSE,
            heavy_hitters=True,
            joinable=True,
        )
    )
    store.create(StreamSpec(name="ads", delta=8, joinable=True))
    return store


def _records(n: int, start: int = 0) -> list[dict]:
    return [
        {
            "stream": "urls" if i % 3 else "ads",
            "item": (7 * i) % UNIVERSE,
            "count": 1 + (i % 3),
            "time": i + 1,
        }
        for i in range(start, start + n)
    ]


def _percentile(sorted_vals: list[float], q: float) -> float:
    if not sorted_vals:
        return 0.0
    index = min(len(sorted_vals) - 1, int(round(q * (len(sorted_vals) - 1))))
    return sorted_vals[index]


#: Attached reader processes measured in the shared-view pass.
QUERY_WORKERS = 4


def _vm_rss_kb(pid: int) -> int | None:
    """Resident set size of ``pid`` in kB, from ``/proc`` (Linux only)."""
    try:
        status = Path(f"/proc/{pid}/status").read_text()
    except OSError:
        return None
    for line in status.splitlines():
        if line.startswith("VmRSS:"):
            return int(line.split()[1])
    return None


class _OpTimer:
    """Per-class latency collector shared by one client thread."""

    def __init__(self) -> None:
        self.samples: dict[str, list[float]] = {}

    def timed(self, op_class: str, fn, *args, **kwargs):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        self.samples.setdefault(op_class, []).append(
            time.perf_counter() - start
        )
        return result


def _reader_loop(host, port, reader_id, n_ops, frozen_t, timer, errors):
    try:
        with Client(host, port, timeout=30.0) as c:
            items = [(reader_id * 131 + 7 * i) % UNIVERSE for i in range(8)]
            for i in range(n_ops):
                item = items[i % len(items)]
                # Mostly historical windows (frozen-routable), some tail.
                t = frozen_t if i % 4 else None
                timer.timed("point", c.point, "urls", item, 0, t)
                if i % 10 == 0:
                    timer.timed(
                        "point_many", c.point_many, "urls", items, (0, frozen_t)
                    )
                if i % 25 == 0:
                    timer.timed(
                        "heavy_hitters", c.heavy_hitters, "urls", 0.01, 0, t
                    )
                if i % 25 == 5:
                    timer.timed(
                        "self_join_size", c.self_join_size, "ads", 0, None
                    )
    except BaseException as exc:  # noqa: B036  # sketchlint: disable=SL004 — collected and re-asserted on the main thread
        errors.append(exc)


def _writer_loop(host, port, records, timer, errors):
    try:
        with Client(host, port, timeout=30.0) as c:
            for lo in range(0, len(records), WRITE_BATCH):
                timer.timed(
                    "ingest_batch",
                    c.ingest_batch,
                    records[lo : lo + WRITE_BATCH],
                )
    except BaseException as exc:  # noqa: B036  # sketchlint: disable=SL004 — collected and re-asserted on the main thread
        errors.append(exc)


def _run_load(query_workers: int = 0) -> dict:
    """One full concurrent-client pass; returns the measured blocks.

    ``query_workers=0`` is the PR 8 baseline (frozen queries answered
    in-process); ``query_workers=N`` publishes the view as a shared
    segment and offloads frozen queries to N attached readers, with
    per-process RSS recorded as the one-shared-copy evidence.
    """
    preload = harness.scaled(PRELOAD)
    write_records = harness.scaled(WRITE_RECORDS)
    reads_per_client = harness.scaled(READS_PER_CLIENT)

    rss_kb: dict[str, int | None] = {}
    pool_health = shared_segment = None
    with tempfile.TemporaryDirectory(prefix="bench-serving-") as tmp:
        runtime = IngestRuntime.create(
            Path(tmp) / "rt", _make_store(), checkpoint_every=CHECKPOINT_EVERY
        )
        server = SketchServer(
            ServingRuntime(runtime, query_workers=query_workers),
            cutover_poll_s=0.1,
        ).start()
        try:
            host, port = server.address
            with Client(host, port, timeout=60.0) as admin:
                admin.ingest_batch(_records(preload))
                admin.cutover()
                frozen_t = server.serving.view().clock("urls")

                errors: list[BaseException] = []
                timers = [_OpTimer() for _ in range(N_READERS + 1)]
                threads = [
                    threading.Thread(
                        target=_writer_loop,
                        args=(
                            host,
                            port,
                            _records(write_records, start=preload),
                            timers[0],
                            errors,
                        ),
                    )
                ]
                threads += [
                    threading.Thread(
                        target=_reader_loop,
                        args=(
                            host,
                            port,
                            reader_id,
                            reads_per_client,
                            frozen_t,
                            timers[reader_id + 1],
                            errors,
                        ),
                    )
                    for reader_id in range(N_READERS)
                ]
                start = time.perf_counter()
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                wall_s = time.perf_counter() - start
                assert not errors, errors

                # Correctness gate: frozen == live at the frozen horizon.
                admin.cutover()
                gate_t = server.serving.view().clock("urls")
                for item in range(0, UNIVERSE, 97):
                    frozen = admin.point("urls", item, 0, gate_t, mode="frozen")
                    live = admin.point("urls", item, 0, gate_t, mode="live")
                    assert frozen == live, (item, frozen, live)
                assert admin.heavy_hitters(
                    "urls", 0.01, 0, gate_t, mode="frozen"
                ) == admin.heavy_hitters("urls", 0.01, 0, gate_t, mode="live")

                described = admin.describe()
                assert described["applied_seq"] == preload + write_records
                serving_block = described["serving"]
                # Shared-copy evidence, gathered while everything is
                # still attached: master + per-reader resident sets.
                # Workers that attach (rather than copy) stay near the
                # fork baseline no matter how large the frozen view is.
                if query_workers:
                    pool = server.serving.query_pool()
                    pool_health = pool.health() if pool is not None else None
                    shared_segment = serving_block.get("shared_segment")
                    rss_kb["master"] = _vm_rss_kb(os.getpid())
                    if pool is not None:
                        for index, pid in enumerate(pool.pids):
                            rss_kb[f"query_worker_{index}"] = _vm_rss_kb(pid)
        finally:
            server.stop()

    merged: dict[str, list[float]] = {}
    for timer in timers:
        for op_class, samples in timer.samples.items():
            merged.setdefault(op_class, []).extend(samples)
    op_classes = {}
    total_ops = 0
    for op_class, samples in sorted(merged.items()):
        samples.sort()
        total_ops += len(samples)
        op_classes[op_class] = {
            "count": len(samples),
            "p50_ms": _percentile(samples, 0.50) * 1e3,
            "p99_ms": _percentile(samples, 0.99) * 1e3,
            "mean_ms": sum(samples) / len(samples) * 1e3,
        }

    measured = {
        "workload": {
            "preload_records": preload,
            "write_records": write_records,
            "write_batch": WRITE_BATCH,
            "reads_per_client": reads_per_client,
        },
        "totals": {
            "ops": total_ops,
            "wall_s": wall_s,
            "qps": total_ops / wall_s,
            "ingested_records_per_s": write_records / wall_s,
        },
        "op_classes": op_classes,
        "serving": {
            "cutovers": serving_block["cutovers"],
            "view_seq": serving_block["view_seq"],
            "tail_records": serving_block["tail_records"],
        },
    }
    if query_workers:
        measured["shared"] = {
            "query_workers": query_workers,
            "segment": shared_segment,
            "pool": pool_health,
            "rss_kb": rss_kb,
        }
    return measured


def run_benchmark() -> dict:
    base = _run_load(query_workers=0)

    # Shared-view pass: only meaningful when the readers get real cores.
    skip_shared = parallel_skip_block()
    if skip_shared is not None:
        shared_block: dict = dict(skip_shared)
    else:
        shared = _run_load(query_workers=QUERY_WORKERS)
        shared_block = {
            **shared["shared"],
            "totals": shared["totals"],
            "op_classes": shared["op_classes"],
            "qps_vs_baseline": (
                shared["totals"]["qps"] / base["totals"]["qps"]
            ),
        }

    op_classes = base["op_classes"]
    payload = {
        "schema": "bench_serving/v2",
        "scale": harness.bench_scale(),
        **cpu_header(),
        "clients": {"readers": N_READERS, "writers": 1},
        **{k: base[k] for k in ("workload", "totals", "op_classes", "serving")},
        "query_workers": shared_block,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(
        f"serving: {payload['totals']['qps']:.0f} qps over "
        f"{N_READERS + 1} clients; point p50 "
        f"{op_classes['point']['p50_ms']:.2f} ms p99 "
        f"{op_classes['point']['p99_ms']:.2f} ms; "
        f"{payload['totals']['ingested_records_per_s']:.0f} ingested rec/s"
    )
    if "skipped" in shared_block:
        print(f"serving shared-view pass skipped: {shared_block['skipped']}")
    else:
        print(
            f"serving shared-view: {shared_block['totals']['qps']:.0f} qps "
            f"with {QUERY_WORKERS} attached readers "
            f"({shared_block['qps_vs_baseline']:.2f}x baseline)"
        )
    return payload


def test_serving_benchmark(benchmark):
    payload = run_once(benchmark, run_benchmark)
    assert OUTPUT.exists()
    assert payload["totals"]["qps"] > 0
    for stats in payload["op_classes"].values():
        assert stats["p99_ms"] >= stats["p50_ms"] >= 0
    assert payload["op_classes"]["point"]["count"] > 0
    assert payload["op_classes"]["ingest_batch"]["count"] > 0
    shared = payload["query_workers"]
    if "skipped" in shared:
        # Small host: the block must say so explicitly, not fake ratios.
        assert shared["skipped"] == "cpus < 4", shared
        return
    # One published segment, every reader attached to it.
    assert shared["segment"], shared
    assert shared["pool"]["workers"] == QUERY_WORKERS
    assert shared["totals"]["qps"] > payload["totals"]["qps"], (
        "shared-view serving did not beat the in-process baseline: "
        f"{shared['totals']['qps']:.0f} vs {payload['totals']['qps']:.0f} qps"
    )
    # RSS must not scale with reader count: attachers map the master's
    # one frozen copy, so no reader outgrows the master process.
    master_kb = shared["rss_kb"].get("master")
    if master_kb:
        for name, kb in shared["rss_kb"].items():
            if name != "master" and kb is not None:
                assert kb <= master_kb, (name, kb, master_kb)


if __name__ == "__main__":
    run_benchmark()
