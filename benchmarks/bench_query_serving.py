"""Query serving: frozen columnar snapshots vs the live query path.

The paper analyses query time (``O(d log m)`` per point query, Sections
3.3/4.2) but serves every query with independent per-counter binary
searches.  ``repro.engine.frozen`` compiles a finalized sketch into
columnar numpy state and answers batches of historical queries with a
handful of vectorized predecessor searches.  This benchmark measures the
end-to-end difference at the paper's ephemeral shape (w = 20000, d = 7)
on all three workloads:

* live per-query latency (p50/p99) and throughput for point queries;
* frozen per-query latency and ``point_many`` batch throughput;
* live vs frozen self-join latency;
* parallel snapshot compilation and ``point_many`` fan-out over 2- and
  4-worker pools (on a tiled probe batch large enough to trigger the
  fan-out), bit-equal to the serial snapshot;
* and — a hard gate — **bit-equality** of every frozen answer with its
  live counterpart, so the speedup can never come from answering a
  different question.

Results are written to ``BENCH_query.json`` at the repo root (schema
``bench_query_serving/v3``, documented in EXPERIMENTS.md; v2 added
``cpus``/``workers`` and the per-workload ``parallel`` block to v1; v3
adds the ``cpu_affinity`` header and replaces the parallel ratios with
an explicit ``{"skipped": "cpus < 4"}`` block on hosts too small to
measure them honestly).  Scale with ``REPRO_BENCH_SCALE``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
from conftest import cpu_header, parallel_skip_block, run_once

from repro.engine import freeze
from repro.eval import harness
from repro.eval.reporting import report

#: Paper shape (Section 6.1): w = 20000, d = 7.
WIDTH = 20_000
DEPTH = 7
DELTA = 50.0

DATASETS = ("Zipf_3", "ObjectID", "ClientID")

#: Repo-root output consumed by CI and EXPERIMENTS.md.
OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_query.json"

SELF_JOIN_QUERIES = 5

#: Pool widths measured for parallel freeze + point_many fan-out.
WORKER_WIDTHS = (2, 4)

#: The fan-out only engages above ``repro.engine.frozen._FANOUT_MIN``
#: probes; the parallel leg tiles the query workload up to this size.
PARALLEL_PROBE_TARGET = 16_384

#: Frozen scalar ``point`` must stay within this factor of the live
#: path's p50 — the fast path exists precisely so one-off queries do
#: not pay the batch engine's array/dedup setup.
SCALAR_POINT_P50_FACTOR = 1.2


def _percentile(sorted_values: list[float], q: float) -> float:
    idx = min(int(q * len(sorted_values)), len(sorted_values) - 1)
    return sorted_values[idx]


def _bench_workload(name: str, skip_parallel: dict | None) -> dict:
    length = harness.scaled(200_000)
    n_queries = max(200, int(2000 * harness.bench_scale()))
    sketch = harness.build_paper_shape_cm(
        name, length, DELTA, width=WIDTH, depth=DEPTH
    )
    items, windows = harness.query_workload(name, length, n_queries)

    freeze_start = time.perf_counter()
    frozen = freeze(sketch)
    freeze_s = time.perf_counter() - freeze_start

    # Live point queries, timed one by one for the latency distribution.
    live_lat = []
    live_answers = []
    for item, (s, t) in zip(items, windows):
        start = time.perf_counter()
        live_answers.append(sketch.point(item, s, t))
        live_lat.append(time.perf_counter() - start)
    live_total = sum(live_lat)
    live_lat.sort()

    # Frozen per-query latency (same one-at-a-time access pattern).
    frozen_lat = []
    for item, (s, t) in zip(items, windows):
        start = time.perf_counter()
        frozen.point(item, s, t)
        frozen_lat.append(time.perf_counter() - start)
    frozen_lat.sort()

    # Frozen batch throughput: the whole workload in one point_many call.
    # The workload is held columnar (ndarrays), as a serving layer would;
    # best-of-N repetitions gives the sustained rate (timeit practice).
    items_arr = np.asarray(items, dtype=np.int64)
    windows_arr = np.asarray(windows, dtype=np.float64)
    frozen_batch_total = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        frozen_answers = frozen.point_many(items_arr, windows_arr)
        frozen_batch_total = min(
            frozen_batch_total, time.perf_counter() - start
        )

    # Equality gate: every frozen answer must be bit-equal to live.
    mismatches = sum(
        1
        for live, cold in zip(live_answers, frozen_answers.tolist())
        if live != cold
    )
    if mismatches:
        raise AssertionError(
            f"{name}: {mismatches}/{n_queries} frozen point answers "
            f"diverge from the live query path"
        )

    # Parallel leg: freeze with a worker pool and fan a large probe
    # batch over the forked children.  The workload is tiled so the
    # batch clears the fan-out threshold at any bench scale; answers
    # must be bit-equal to the serial snapshot's, tile by tile.
    reps = max(1, -(-PARALLEL_PROBE_TARGET // n_queries))
    par_items = np.tile(items_arr, reps)
    par_windows = np.tile(windows_arr, (reps, 1))
    serial_par_total = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        serial_par_answers = frozen.point_many(par_items, par_windows)
        serial_par_total = min(serial_par_total, time.perf_counter() - start)
    parallel: dict = dict(skip_parallel) if skip_parallel else {}
    for workers in () if skip_parallel else WORKER_WIDTHS:
        par_freeze_start = time.perf_counter()
        par_frozen = freeze(sketch, workers=workers)
        par_freeze_s = time.perf_counter() - par_freeze_start
        par_total = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            par_answers = par_frozen.point_many(par_items, par_windows)
            par_total = min(par_total, time.perf_counter() - start)
        if not np.array_equal(par_answers, serial_par_answers):
            raise AssertionError(
                f"{name}: {workers}-worker point_many diverges from the "
                f"serial snapshot"
            )
        parallel[str(workers)] = {
            "equal": True,
            "freeze_s": par_freeze_s,
            "point_many_total_s": par_total,
            "point_many_qps": len(par_items) / par_total,
            "speedup_vs_serial_frozen": serial_par_total / par_total,
        }

    # Self-join: a few holistic queries on nested windows.
    sj_windows = [
        (length * i / 10.0, length * (10 - i) / 10.0)
        for i in range(SELF_JOIN_QUERIES)
    ]
    start = time.perf_counter()
    live_sj = [sketch.self_join_size(s, t) for s, t in sj_windows]
    live_sj_total = time.perf_counter() - start
    start = time.perf_counter()
    frozen_sj = [frozen.self_join_size(s, t) for s, t in sj_windows]
    frozen_sj_total = time.perf_counter() - start
    if live_sj != frozen_sj:
        raise AssertionError(
            f"{name}: frozen self-join answers diverge from live"
        )

    return {
        "length": length,
        "queries": n_queries,
        "equal": True,
        "live": {
            "point_total_s": live_total,
            "point_qps": n_queries / live_total,
            "point_p50_us": _percentile(live_lat, 0.50) * 1e6,
            "point_p99_us": _percentile(live_lat, 0.99) * 1e6,
            "self_join_total_s": live_sj_total,
        },
        "frozen": {
            "freeze_s": freeze_s,
            "point_total_s": sum(frozen_lat),
            "point_p50_us": _percentile(frozen_lat, 0.50) * 1e6,
            "point_p99_us": _percentile(frozen_lat, 0.99) * 1e6,
            "point_many_total_s": frozen_batch_total,
            "point_many_qps": n_queries / frozen_batch_total,
            "self_join_total_s": frozen_sj_total,
        },
        "parallel_queries": int(len(par_items)),
        "parallel": parallel,
        "speedup_point_many": live_total / frozen_batch_total,
        "speedup_self_join": live_sj_total / max(frozen_sj_total, 1e-12),
    }


def run_benchmark() -> dict:
    header = cpu_header()
    skip_parallel = parallel_skip_block()
    results = {}
    rows = []
    for name in DATASETS:
        stats = _bench_workload(name, skip_parallel)
        results[name] = stats
        par = stats["parallel"]
        rows.append(
            (
                name,
                stats["queries"],
                round(stats["live"]["point_p50_us"], 1),
                round(stats["live"]["point_p99_us"], 1),
                round(stats["frozen"]["point_p50_us"], 1),
                round(stats["frozen"]["point_p99_us"], 1),
                round(stats["frozen"]["point_many_qps"], 0),
                round(stats["speedup_point_many"], 1),
                round(par["4"]["point_many_qps"], 0)
                if "4" in par
                else "skipped",
            )
        )
    payload = {
        "schema": "bench_query_serving/v3",
        "scale": harness.bench_scale(),
        **header,
        "workers": list(WORKER_WIDTHS),
        "shape": {"width": WIDTH, "depth": DEPTH, "delta": DELTA},
        "workloads": results,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    report(
        f"Query serving: frozen vs live (w={WIDTH}, d={DEPTH}, "
        f"delta={DELTA}, cpus={header['cpus']})",
        [
            "dataset",
            "queries",
            "live p50 (us)",
            "live p99 (us)",
            "frozen p50 (us)",
            "frozen p99 (us)",
            "frozen batch qps",
            "batch speedup",
            "4-worker qps",
        ],
        rows,
        json_name="query_serving",
    )
    return payload


def test_query_serving(benchmark):
    payload = run_once(benchmark, run_benchmark)
    assert OUTPUT.exists()
    for name in DATASETS:
        stats = payload["workloads"][name]
        assert stats["equal"]
        # The acceptance gate: on the paper's skewed workload, batched
        # frozen serving beats per-query live serving by at least an
        # order of magnitude.  The near-uniform workloads are bound by
        # hashing rather than predecessor search, so they get a looser
        # sanity bound.
        floor = 10.0 if name == "Zipf_3" else 2.0
        assert stats["speedup_point_many"] >= floor, (
            f"{name}: frozen point_many only "
            f"{stats['speedup_point_many']:.1f}x faster than live "
            f"(floor {floor}x)"
        )
        parallel = stats["parallel"]
        if "skipped" in parallel:
            # Small host: the skip block must be explicit, not ratios.
            assert parallel["skipped"] == "cpus < 4", parallel
        else:
            for workers in WORKER_WIDTHS:
                assert parallel[str(workers)]["equal"]
    # The scalar fast path gate: a one-off frozen point query must not
    # cost more than a live one (it used to pay the full batch setup —
    # 181us vs 13us p50 on Zipf_3 before the fast path).
    zipf = payload["workloads"]["Zipf_3"]
    live_p50 = zipf["live"]["point_p50_us"]
    frozen_p50 = zipf["frozen"]["point_p50_us"]
    assert frozen_p50 <= live_p50 * SCALAR_POINT_P50_FACTOR, (
        f"Zipf_3: frozen scalar point p50 {frozen_p50:.1f}us exceeds "
        f"{SCALAR_POINT_P50_FACTOR}x the live p50 {live_p50:.1f}us"
    )


if __name__ == "__main__":
    run_benchmark()
