"""Figure 5: point-query error vs actual sketch size (the error-space
tradeoff).

Paper: PLA gives the best tradeoff on Zipf_3 and ObjectID (smaller space
at equal error); on ClientID there is no major difference.  Expected
shape here: at every Delta, PLA's (space, error) point Pareto-dominates
PWC_CountMin's on the skewed datasets.
"""

from __future__ import annotations

from conftest import run_once

from repro.eval.experiments import run_fig5


def test_fig5_point_error_vs_space(benchmark, dataset):
    result = run_once(benchmark, run_fig5, dataset)
    rows = result["rows"]
    assert len(rows) >= 5
    for row in rows:
        _delta, ams_w, ams_e, pla_w, pla_e, cm_w, cm_e = row
        assert ams_w >= 0 and pla_w >= 0 and cm_w >= 0
        assert ams_e >= 0 and pla_e >= 0 and cm_e >= 0
    if dataset in ("Zipf_3", "ObjectID"):
        for row in rows:
            _delta, _ams_w, _ams_e, pla_w, pla_e, cm_w, cm_e = row
            # Pareto dominance: PLA uses less space and is at least as
            # accurate (small tolerance for query noise).
            assert pla_w <= cm_w
            assert pla_e <= cm_e * 1.15
