"""Extension: query latency scaling (the Sections 3.3 / 4.2 analysis).

The paper analyses query time — ``O(d log m)`` for point queries,
``O(w d log m)`` for joins — but plots no figure for it.  This extension
measures point-query and self-join latency as the stream length grows at
fixed Delta.  Expected shape: point latency grows at most
logarithmically in m (binary searches over per-counter histories), far
slower than the linear growth of the history itself.
"""

from __future__ import annotations

import time

from conftest import run_once

from repro.core.persistent_ams import PersistentAMS
from repro.core.persistent_countmin import PersistentCountMin
from repro.eval import harness
from repro.eval.reporting import report
from repro.streams.generators import zipf_stream

LENGTHS = tuple(harness.scaled(base) for base in (10_000, 40_000, 160_000))
DELTA = 20
POINT_QUERIES = 400


def _measure(length: int) -> tuple[float, float, int]:
    stream = zipf_stream(length, exponent=1.5, seed=17)
    cm = PersistentCountMin(width=1024, depth=5, delta=DELTA, seed=2)
    ams = PersistentAMS(width=1024, depth=5, delta=DELTA, seed=2)
    from repro.engine import batch_ingest

    batch_ingest(cm, stream)
    batch_ingest(ams, stream)
    items = [int(stream.items[i]) for i in range(0, length, length // 50)]
    s, t = length // 5, 4 * length // 5

    start = time.perf_counter()
    for i in range(POINT_QUERIES):
        cm.point(items[i % len(items)], s - i, t - i)
    point_us = (time.perf_counter() - start) / POINT_QUERIES * 1e6

    start = time.perf_counter()
    for i in range(10):
        ams.self_join_size(s - i, t - i)
    join_ms = (time.perf_counter() - start) / 10 * 1e3
    return point_us, join_ms, cm.persistence_words()


def run_extension() -> dict:
    rows = []
    for length in LENGTHS:
        point_us, join_ms, words = _measure(length)
        rows.append(
            (length, round(point_us, 1), round(join_ms, 2), words)
        )
    report(
        f"Extension: query latency vs stream length (delta={DELTA})",
        ["m", "point query (us)", "self-join (ms)", "PLA words"],
        rows,
        json_name="ext_querytime",
    )
    return {"rows": rows}


def test_ext_querytime(benchmark):
    result = run_once(benchmark, run_extension)
    rows = result["rows"]
    assert len(rows) == len(LENGTHS)
    # Point query latency grows far slower than the stream (16x more
    # data should cost well under 8x the latency; log m predicts ~1.3x).
    first, last = rows[0], rows[-1]
    growth = last[1] / max(first[1], 1e-9)
    data_growth = last[0] / first[0]
    assert growth < data_growth / 2
