"""Ablation: optimal PLA (O'Rourke) vs an anchored O(1)-state filter.

DESIGN.md calls out the choice of the *optimal* online PLA as a design
decision worth quantifying.  This ablation tracks every counter of a
Count-Min row with both generators at equal Delta and compares emitted
segment counts.  Expected shape: the optimal algorithm never emits more
segments, and on drifting real-trace-like counters it emits materially
fewer — the space advantage the paper's Figure 3 banks on.
"""

from __future__ import annotations

from conftest import run_once

from repro.eval import harness
from repro.eval.reporting import report
from repro.hashing import BucketHashFamily, HashConfig
from repro.pla.orourke import OnlinePLA
from repro.pla.swing import SwingPLA

LENGTH = harness.scaled(30_000)
DELTAS = (8, 32, 128)


def segment_counts(dataset: str, delta: float) -> tuple[int, int]:
    """Total emitted segments for one hashed counter row, both schemes."""
    stream = harness.get_dataset(dataset, LENGTH)
    hashes = BucketHashFamily(HashConfig(width=512, depth=1, seed=3))
    optimal: dict[int, OnlinePLA] = {}
    anchored: dict[int, SwingPLA] = {}
    counters: dict[int, int] = {}
    for t, item in enumerate(stream.items, start=1):
        col = hashes.bucket(0, int(item))
        value = counters.get(col, 0) + 1
        counters[col] = value
        if col not in optimal:
            optimal[col] = OnlinePLA(delta=delta)
            anchored[col] = SwingPLA(delta=delta)
        optimal[col].feed(t, float(value))
        anchored[col].feed(t, float(value))
    n_optimal = sum(len(pla.finalize()) for pla in optimal.values())
    n_anchored = sum(len(pla.finalize()) for pla in anchored.values())
    return n_optimal, n_anchored


def run_ablation() -> dict:
    rows = []
    for dataset in ("Zipf_3", "ObjectID", "ClientID"):
        for delta in DELTAS:
            n_optimal, n_anchored = segment_counts(dataset, delta)
            ratio = n_anchored / n_optimal if n_optimal else float("inf")
            rows.append(
                (dataset, delta, n_optimal, n_anchored,
                 round(ratio, 2) if n_optimal else "inf")
            )
    report(
        f"Ablation: optimal (O'Rourke) vs anchored PLA segments "
        f"(m={LENGTH}, one row)",
        ["dataset", "delta", "optimal segs", "anchored segs", "ratio"],
        rows,
        json_name="ablation_pla",
    )
    return {"rows": rows}


def test_ablation_pla(benchmark):
    result = run_once(benchmark, run_ablation)
    for _dataset, _delta, n_optimal, n_anchored, _ratio in result["rows"]:
        # Optimality: O'Rourke never emits more segments.
        assert n_optimal <= n_anchored
    # On the drifting ObjectID trace the gap is material somewhere.
    object_rows = [r for r in result["rows"] if r[0] == "ObjectID"]
    assert any(r[3] > r[2] for r in object_rows)
