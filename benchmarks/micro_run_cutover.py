"""Micro-benchmark behind ``SHORT_RUN_CUTOVER`` in ``repro.core.columnar``.

``feed_tracked_row`` has two bit-identical bodies: the columnar plan
(stable argsort, run extraction, one fused ``feed_many`` per counter)
and the scalar per-update loop.  Which one is faster depends on the
row's run-length profile — long runs amortize the sort and reach the
fused tracker path, singleton runs make the setup pure overhead.  The
dispatch statistic is the *update-weighted* mean run length
``sum(c_i^2) / n`` (on the uniform rows swept here it sits one above
the plain mean ``n / distinct``; on skewed rows it is dominated by the
hot counters, which is exactly where columnar must stay on).  This
benchmark times both bodies on synthetic single-row workloads whose
run length sweeps across the crossover, and pins
``SHORT_RUN_CUTOVER`` to the measured regime change in weighted terms.

Both paths are driven through the real ``feed_tracked_row`` entry point
by pinning the module cutover to 0 (always columnar) or infinity
(always scalar), so the timings include exactly the dispatch the
sketches pay.  Results are written to ``BENCH_run_cutover.json`` at the
repo root (schema documented in EXPERIMENTS.md).  Scale with
``REPRO_BENCH_SCALE``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
from conftest import cpu_header, run_once

from repro.core import columnar
from repro.eval import harness
from repro.eval.reporting import report
from repro.persistence.tracker import PLATracker

DELTA = 50.0

#: Mean run lengths (updates per distinct column) swept across the
#: committed cutover.  Ratio 1 is the uniform singleton-run regime;
#: ratios 2-8 bracket the crossover (the two bodies run within ~10% of
#: each other there); 32/64 cross the fused ``feed_many`` threshold
#: (``_FUSED_MIN = 16``) but unit-count runs of that length stay inside
#: the PLA tube, so the fused setup cost can still lose mildly to
#: per-update feeding; 1024 is the deep-run regime (Zipf hot counters,
#: thousands of updates per run) where the fused path wins outright —
#: the regime the update-weighted dispatch statistic protects on
#: skewed real rows.
RATIOS = (1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 6.0, 8.0, 32.0, 64.0, 1024.0)

#: Timing repetitions per path; the minimum is reported (scheduler noise
#: only ever inflates a run, and the minimum hits both paths equally).
REPS = 5

#: Repo-root output consumed by EXPERIMENTS.md.
OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_run_cutover.json"


def _make_tracker() -> PLATracker:
    return PLATracker(delta=DELTA)


def _row_workload(n: int, ratio: float) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """One hash row's updates with mean run length ``ratio``."""
    distinct = max(1, round(n / ratio))
    rng = np.random.default_rng(harness.BENCH_SEED)
    row_cols = rng.integers(0, distinct, size=n).astype(np.int64)
    times = np.arange(1, n + 1, dtype=np.int64)
    counts = np.ones(n, dtype=np.int64)
    return row_cols, times, counts, distinct


def _time_path(
    cutover: float,
    row_cols: np.ndarray,
    times: np.ndarray,
    counts: np.ndarray,
    distinct: int,
) -> tuple[float, list[int], int]:
    """Best-of-``REPS`` wall time for one ``feed_tracked_row`` body.

    ``cutover`` pins the module threshold for the duration of the call:
    0 forces the columnar plan, ``inf`` forces the scalar loop.  Returns
    the final counters and total tracker words alongside the time so the
    caller can gate that both bodies produced the same state.
    """
    saved = columnar.SHORT_RUN_CUTOVER
    columnar.SHORT_RUN_CUTOVER = cutover
    try:
        best = float("inf")
        counters: list[int] = []
        trackers: dict[int, PLATracker] = {}
        for _ in range(REPS):
            counters = [0] * distinct
            trackers = {}
            start = time.perf_counter()
            columnar.feed_tracked_row(
                counters, trackers, row_cols, times, counts, _make_tracker
            )
            best = min(best, time.perf_counter() - start)
    finally:
        columnar.SHORT_RUN_CUTOVER = saved
    words = sum(tracker.words() for tracker in trackers.values())
    return best, counters, words


def _bench_ratio(n: int, ratio: float) -> dict:
    row_cols, times, counts, distinct = _row_workload(n, ratio)
    per_col = np.bincount(row_cols)
    weighted_run = float(np.square(per_col).sum()) / n
    scalar_s, scalar_counters, scalar_words = _time_path(
        float("inf"), row_cols, times, counts, distinct
    )
    columnar_s, col_counters, col_words = _time_path(
        0.0, row_cols, times, counts, distinct
    )
    if scalar_counters != col_counters or scalar_words != col_words:
        raise AssertionError(
            f"ratio {ratio}: columnar and scalar bodies diverged "
            f"(words {col_words} vs {scalar_words})"
        )
    return {
        "updates": n,
        "distinct": distinct,
        "mean_run": n / distinct,
        "weighted_run": weighted_run,
        "equal": True,
        "scalar_s": scalar_s,
        "columnar_s": columnar_s,
        "columnar_speedup": scalar_s / columnar_s,
    }


def _measured_crossover(results: dict) -> float | None:
    """First swept *weighted* run length where columnar stays winning."""
    for ratio in RATIOS:
        if all(
            results[f"{r:g}"]["columnar_speedup"] >= 1.0
            for r in RATIOS
            if r >= ratio
        ):
            return results[f"{ratio:g}"]["weighted_run"]
    return None


def run_benchmark() -> dict:
    n = harness.scaled(32_768)
    results = {}
    rows = []
    for ratio in RATIOS:
        stats = _bench_ratio(n, ratio)
        results[f"{ratio:g}"] = stats
        rows.append(
            (
                f"{ratio:g}",
                round(stats["weighted_run"], 2),
                stats["distinct"],
                round(stats["scalar_s"] * 1e3, 2),
                round(stats["columnar_s"] * 1e3, 2),
                round(stats["columnar_speedup"], 2),
            )
        )
    payload = {
        "schema": "micro_run_cutover/v1",
        "scale": harness.bench_scale(),
        **cpu_header(),
        "updates": n,
        "delta": DELTA,
        "committed_cutover": columnar.SHORT_RUN_CUTOVER,
        "measured_crossover": _measured_crossover(results),
        "ratios": results,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    report(
        f"Short-run cutover: scalar vs columnar row feed (n={n}, "
        f"delta={DELTA}, committed cutover="
        f"{columnar.SHORT_RUN_CUTOVER:g})",
        [
            "mean run",
            "weighted run",
            "distinct",
            "scalar ms",
            "columnar ms",
            "columnar speedup",
        ],
        rows,
        json_name="micro_run_cutover",
    )
    return payload


def test_run_cutover(benchmark):
    payload = run_once(benchmark, run_benchmark)
    assert OUTPUT.exists()
    for stats in payload["ratios"].values():
        assert stats["equal"]
    # The regimes the cutover constant encodes must hold: the scalar
    # loop is at least competitive in the singleton-run regime, and
    # columnar wins outright in the deep-run regime where the fused
    # tracker path amortizes (runs of ~1k, the Zipf-hot-counter shape).
    # Everything in between is noise-bound — the two bodies run within
    # ~10-20% of each other from ratio 1.5 through 64, including a mild
    # scalar-favoring dip at 32/64 where unit-count runs stay inside
    # the PLA tube — so only the unambiguous extremes gate.
    assert payload["ratios"]["1"]["columnar_speedup"] < 1.15, (
        "columnar body clearly beat the scalar loop at mean run "
        "length 1; SHORT_RUN_CUTOVER may be obsolete"
    )
    assert payload["ratios"]["1024"]["columnar_speedup"] > 1.2, (
        "scalar loop kept pace with the fused columnar path at mean "
        "run length 1024; the columnar plan has regressed"
    )


if __name__ == "__main__":
    run_benchmark()
